package scenario

import (
	"strings"
	"testing"
)

// minimal valid chaos scenario used as the mutation base below.
const chaosOK = `
name: t
kind: chaos
workload:
  items: 8
  capacity: 2
  horizon: 30s
`

// TestParseErrors is the invalid-scenario wall for the decode layer: every
// malformed-document class must produce a distinct, actionable error from
// Parse — never a panic, never a silent default.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"missing name", "kind: chaos\nworkload:\n  items: 1\n", `missing required key "name"`},
		{"missing kind", "name: t\nworkload:\n  items: 1\n", `missing required key "kind"`},
		{"unknown kind", "name: t\nkind: tabel4\nworkload:\n  items: 1\n", `unknown kind "tabel4"`},
		{"missing workload", "name: t\nkind: chaos\n", `missing required key "workload"`},
		{"unknown top-level key", chaosOK + "wrokload: 1\n", `unknown key "wrokload"`},
		{"unknown workload key", "name: t\nkind: chaos\nworkload:\n  itms: 8\n  capacity: 2\n  horizon: 30s\n", `unknown key "itms"`},
		{"unknown topology key", chaosOK + "topology:\n  open_firewal: true\n", `unknown key "open_firewal"`},
		{"workload not mapping", "name: t\nkind: chaos\nworkload: 3\n", "must be a mapping, got integer"},
		{"duration as int", "name: t\nkind: chaos\nworkload:\n  items: 8\n  capacity: 2\n  horizon: 30\n", `must be a duration string`},
		{"invalid duration", "name: t\nkind: chaos\nworkload:\n  items: 8\n  capacity: 2\n  horizon: 30x\n", `invalid duration "30x"`},
		{"negative duration", "name: t\nkind: chaos\nworkload:\n  items: 8\n  capacity: 2\n  horizon: -5s\n", `negative duration "-5s"`},
		{"wan loss outside [0,1]", chaosOK + "topology:\n  wan: {loss: 1.5}\n", "outside [0,1]"},
		{"gridftp loss_rates outside [0,1]", "name: t\nkind: gridftp\nworkload:\n  file_size: 1024\n  streams: [1]\n  loss_rates: [2]\n", "outside [0,1]"},
		{"bool as string", chaosOK + "topology:\n  open_firewall: yes\n", "must be true or false, got string"},
		{"int as string", "name: t\nkind: chaos\nworkload:\n  items: eight\n  capacity: 2\n  horizon: 30s\n", "must be an integer, got string"},
		{"fractional int", "name: t\nkind: chaos\nworkload:\n  items: 8.5\n  capacity: 2\n  horizon: 30s\n", "must be an integer"},

		// Fault-schedule decode errors.
		{"fault window inverted", chaosOK + "faults:\n  - outage: {a: rwcp-gw, b: rwcp-outer, from: 5s, to: 2s}\n", "window to 2s <= from 5s"},
		{"fault window inverted hint", chaosOK + "faults:\n  - outage: {a: rwcp-gw, b: rwcp-outer, from: 5s, to: 2s}\n", "must end after they start"},
		{"permanent-capable window inverted", chaosOK + "faults:\n  - slow: {host: compas01, factor: 4, from: 5s, to: 2s}\n", `omit "to" for a permanent slow`},
		{"outage missing to", chaosOK + "faults:\n  - outage: {a: rwcp-gw, b: rwcp-outer, from: 5s}\n", `missing required key "to"`},
		{"outage missing end", chaosOK + "faults:\n  - outage: {a: rwcp-gw, from: 5s, to: 9s}\n", `needs both link ends`},
		{"crash missing host", chaosOK + "faults:\n  - crash: {from: 5s}\n", `missing required key "host"`},
		{"flap missing period", chaosOK + "faults:\n  - flap: {a: rwcp-gw, b: rwcp-outer, from: 1s, to: 9s, duty: 0.5}\n", "flap needs period > 0"},
		{"flap duty outside (0,1)", chaosOK + "faults:\n  - flap: {a: rwcp-gw, b: rwcp-outer, from: 1s, to: 9s, period: 1s, duty: 1.5}\n", "flap duty 1.5 outside (0,1)"},
		{"degrade loss outside [0,1)", chaosOK + "faults:\n  - degrade: {src: rwcp-gw, dst: rwcp-outer, loss: 1}\n", "degrade loss 1 outside [0,1)"},
		{"degrade missing dst", chaosOK + "faults:\n  - degrade: {src: rwcp-gw}\n", "degrade is directional"},
		{"slow factor zero", chaosOK + "faults:\n  - slow: {host: compas01}\n", "slow factor 0 must be > 0"},
		{"partition empty group", chaosOK + "faults:\n  - partition: {a: [], b: [etl-sun]}\n", "partition needs non-empty groups"},
		{"unknown fault kind", chaosOK + "faults:\n  - fry: {host: compas01}\n", `unknown fault kind "fry"`},
		{"fault not single-key", chaosOK + "faults:\n  - crash\n", "single-key mapping"},
		{"unknown fault key", chaosOK + "faults:\n  - crash: {host: compas01, form: 5s}\n", `unknown key "form"`},
		{"faults not a list", chaosOK + "faults: {crash: {host: compas01}}\n", "faults must be a list"},

		// Baseline/compare structure.
		{"baseline on non-chaos", "name: t\nkind: table4\nworkload:\n  items: 10\n  capacity: 2\nbaseline:\n  name: b\n", "baseline is only supported for kind chaos"},
		{"compare without baseline", chaosOK + "compare: speculation-wins\n", `compare "speculation-wins" requires a baseline`},
		{"baseline in baseline", chaosOK + "baseline:\n  baseline: {name: b2}\n", "baseline cannot itself declare a baseline"},
		{"assert not name or map", chaosOK + "assert:\n  - 3\n", `must be a name or "name: arg"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestValidateErrors covers the second layer: specs that decode fine but
// fail semantic validation — shape constraints, assertion vocabulary, and
// host/link names checked against a real testbed via ApplyPlan.
func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"chaos needs items", "name: t\nkind: chaos\nworkload:\n  capacity: 2\n  horizon: 30s\n", "needs items > 0 and capacity > 0"},
		{"chaos needs horizon", "name: t\nkind: chaos\nworkload:\n  items: 8\n  capacity: 2\n", "workload.horizon required"},
		{"unknown system", "name: t\nkind: chaos\nworkload:\n  items: 8\n  capacity: 2\n  horizon: 30s\n  system: compass\n", `unknown system "compass"`},
		{"faults on table2", "name: t\nkind: table2\nworkload:\n  rounds: 1\n  sizes: [64]\nfaults:\n  - crash: {host: compas01, from: 1s}\n", "faults are not supported for kind table2"},
		{"chaos parallel sites", chaosOK + "topology:\n  parallel_sites: 2\n", "topology.parallel_sites must be 0"},
		{"monitor parallel sites", "name: t\nkind: monitor\nworkload:\n  items: 10\n  capacity: 2\n  interval: 1s\ntopology:\n  parallel_sites: 2\n", "topology.parallel_sites must be 0"},
		{"gridftp with topology", "name: t\nkind: gridftp\nworkload:\n  file_size: 1024\n  streams: [1]\n  loss_rates: [0]\ntopology:\n  seed: 3\n", "topology section must be empty"},
		{"unknown group alias", chaosOK + "faults:\n  - partition: {a: [\"$lan-side\"], b: [etl-sun], from: 1s}\n", `unknown group alias "$lan-side"`},
		{"unknown chaos assertion", chaosOK + "assert:\n  - no-such-check\n", "unknown chaos assertion"},
		{"unknown table4 assertion", "name: t\nkind: table4\nworkload:\n  items: 10\n  capacity: 2\nassert:\n  - indirect-slower\n", "unknown table4 assertion"},
		{"assertion arg type", chaosOK + "assert:\n  - elapsed-ceiling: 5\n", "must be a duration string"},
		{"assertion unwanted arg", chaosOK + "assert:\n  - exact-optimum: 3\n", "takes no argument"},
		{"assertion negative arg", chaosOK + "assert:\n  - min-requeues: -1\n", "must be >= 0"},
		{"registrations unknown key", chaosOK + "assert:\n  - registrations: {min: 1, mac: 2}\n", `unknown key "mac"`},
		{"unknown compare", chaosOK + "compare: fastest-wins\nbaseline:\n  desc: same\n", `unknown compare "fastest-wins"`},
		{"crash unknown host", chaosOK + "faults:\n  - crash: {host: compas99, from: 1s}\n", `"compas99" is not a host`},
		{"outage unknown node", chaosOK + "faults:\n  - outage: {a: rwcp-gw, b: nonesuch, from: 1s, to: 2s}\n", `unknown node in link "rwcp-gw"<->"nonesuch"`},
		{"outage no such link", chaosOK + "faults:\n  - outage: {a: rwcp-sun, b: etl-sun, from: 1s, to: 2s}\n", `no link "rwcp-sun"<->"etl-sun"`},
		{"partition unknown node", chaosOK + "faults:\n  - partition: {a: [compas99], b: [etl-sun], from: 1s}\n", `partition names unknown node "compas99"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Parse([]byte(tc.src))
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			err = Validate(s)
			if err == nil {
				t.Fatalf("Validate passed, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestDecodeDefaults pins the schema's implicit defaults.
func TestDecodeDefaults(t *testing.T) {
	s, err := Parse([]byte(chaosOK))
	if err != nil {
		t.Fatal(err)
	}
	if s.Chaos == nil {
		t.Fatal("chaos workload not decoded")
	}
	if s.Chaos.System != "wide" {
		t.Errorf("default system = %q, want wide", s.Chaos.System)
	}
	if !s.Chaos.UseProxy {
		t.Error("use_proxy should default to true (the paper's firewall-compliant path)")
	}
	if s.Chaos.Recovery != nil {
		t.Error("recovery should default to nil (no recovery policy)")
	}
}

// TestBaselineMerge pins the deep-merge semantics: scalar patches override,
// nested maps merge, and a null patch value deletes the base key.
func TestBaselineMerge(t *testing.T) {
	src := `
name: t
kind: chaos
workload:
  items: 8
  capacity: 2
  horizon: 30s
  recovery:
    status_retries: 3
    speculate_after: 2s
baseline:
  desc: no speculation
  workload:
    recovery:
      speculate_after: 0s
`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Baseline == nil {
		t.Fatal("baseline not decoded")
	}
	if s.Chaos.Recovery.SpeculateAfter.String() != "2s" {
		t.Errorf("primary speculate_after = %v", s.Chaos.Recovery.SpeculateAfter)
	}
	b := s.Baseline
	if b.Desc != "no speculation" {
		t.Errorf("baseline desc = %q", b.Desc)
	}
	// Nested merge: status_retries survives, speculate_after overridden.
	if b.Chaos.Recovery == nil || b.Chaos.Recovery.StatusRetries != 3 {
		t.Errorf("baseline recovery = %+v, want status_retries 3 preserved", b.Chaos.Recovery)
	}
	if b.Chaos.Recovery.SpeculateAfter != 0 {
		t.Errorf("baseline speculate_after = %v, want 0", b.Chaos.Recovery.SpeculateAfter)
	}
	// Workload scalars from the primary survive the merge.
	if b.Chaos.Items != 8 || b.Chaos.Horizon.String() != "30s" {
		t.Errorf("baseline workload = %+v", b.Chaos)
	}

	// Null deletion: "recovery: null" strips the whole mitigation.
	del := strings.Replace(src, "      speculate_after: 0s", "", 1)
	del = strings.Replace(del, "    recovery:", "    recovery: null", 1)
	s2, err := Parse([]byte(del))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Baseline.Chaos.Recovery != nil {
		t.Errorf("null patch should delete recovery, got %+v", s2.Baseline.Chaos.Recovery)
	}
}
