package scenario

import (
	"fmt"
	"strings"
	"time"

	"nxcluster/internal/obs"
	"nxcluster/internal/obs/causal"
	"nxcluster/internal/obs/timeseries"
)

// SLOSpec is a scenario's `slo:` block: service-level objectives evaluated
// deterministically against the run's causal trace (latency percentiles over
// span legs) and its time-series store (throughput floors and error budgets
// with burn-rate windows). Every objective counts as one invariant; a
// violated objective is a scenario failure exactly like a failed assertion.
//
// Only chaos and monitor scenarios may declare SLOs — they are the kinds
// that run with an observer attached. A chaos scenario with an SLO block
// additionally gets a kernel-scheduled sampler (window width slo.interval,
// default 1s), which reads metrics but never perturbs virtual-time results.
type SLOSpec struct {
	// Interval is the chaos sampler's window width (chaos kind only;
	// monitor scenarios window on workload.interval).
	Interval time.Duration

	Latency    []LatencySLO
	Throughput []ThroughputSLO
	Budgets    []ErrorBudgetSLO
}

// LatencySLO bounds a percentile of one causal leg's span durations.
type LatencySLO struct {
	// Leg is the span label "cat/name" (e.g. "rmf/job", "mpi/rank").
	Leg string
	// Percentile is the nearest-rank percentile in (0, 100].
	Percentile float64
	// Max is the ceiling the percentile must not exceed.
	Max time.Duration
	// MinCount guards against vacuous passes: the run must produce at least
	// this many completed spans of the leg (default 1).
	MinCount int
}

// ThroughputSLO floors the volume carried by one or more time series.
// Series supports '*' wildcards; matching series are summed.
type ThroughputSLO struct {
	Series string
	// MinTotal floors the summed Total() over the whole run.
	MinTotal int64
	// MinRate floors the average per-virtual-second rate over the run.
	MinRate float64
}

// ErrorBudgetSLO caps the errors counted by one or more rate series, in
// total (the budget) and optionally per burn-rate window (any rolling
// Window-sample sum exceeding MaxBurn is a violation even when the whole-run
// budget holds — a fast burn is an incident even if it stops early).
type ErrorBudgetSLO struct {
	Series string
	// Budget is the whole-run ceiling on the summed series total.
	Budget int64
	// Window is the burn-rate window width in samples (0 = no burn check).
	Window int
	// MaxBurn is the ceiling on any rolling Window-sample sum.
	MaxBurn int64
}

// Objectives reports how many objectives the block declares — each counts
// as one invariant in the scenario result.
func (sl *SLOSpec) Objectives() int {
	if sl == nil {
		return 0
	}
	return len(sl.Latency) + len(sl.Throughput) + len(sl.Budgets)
}

// Evaluate checks every objective against the run's recorded events and
// time-series store, returning one failure string per violated objective.
// Evaluation is pure (no simulation, no clock), so it is trivially
// deterministic: the same trace and store always yield the same verdict.
func (sl *SLOSpec) Evaluate(events []obs.Event, store *timeseries.Store) []string {
	if sl == nil {
		return nil
	}
	var fails []string
	if len(sl.Latency) > 0 {
		f := causal.Build(events)
		for _, l := range sl.Latency {
			if msg := l.check(f); msg != "" {
				fails = append(fails, msg)
			}
		}
	}
	for _, tp := range sl.Throughput {
		if msg := tp.check(store); msg != "" {
			fails = append(fails, msg)
		}
	}
	for _, eb := range sl.Budgets {
		if msg := eb.check(store); msg != "" {
			fails = append(fails, msg)
		}
	}
	return fails
}

func (l LatencySLO) check(f *causal.Forest) string {
	durs := causal.SpanDurations(f, l.Leg)
	minCount := l.MinCount
	if minCount <= 0 {
		minCount = 1
	}
	if len(durs) < minCount {
		return fmt.Sprintf("slo latency %s: %d completed spans, want >= %d (objective is vacuous)",
			l.Leg, len(durs), minCount)
	}
	got := causal.Percentile(durs, l.Percentile)
	if got > l.Max {
		return fmt.Sprintf("slo latency %s: p%v = %v > max %v (%d spans)",
			l.Leg, l.Percentile, got, l.Max, len(durs))
	}
	return ""
}

// matchedSeries resolves a series pattern against the store, or returns an
// error message when the store is missing or nothing matches (an SLO against
// a series that does not exist must fail loudly, not pass vacuously).
func matchedSeries(store *timeseries.Store, pattern, what string) ([]*timeseries.Series, string) {
	if store == nil {
		return nil, fmt.Sprintf("slo %s %s: run produced no time-series store", what, pattern)
	}
	var out []*timeseries.Series
	for _, name := range store.Names() {
		if matchSeries(pattern, name) {
			out = append(out, store.Series(name))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Sprintf("slo %s %s: no series matches (store has %d series)", what, pattern, store.Len())
	}
	return out, ""
}

func (tp ThroughputSLO) check(store *timeseries.Store) string {
	matched, msg := matchedSeries(store, tp.Series, "throughput")
	if msg != "" {
		return msg
	}
	var total int64
	for _, s := range matched {
		total += s.Total()
	}
	if total < tp.MinTotal {
		return fmt.Sprintf("slo throughput %s: total %d < floor %d (%d series)",
			tp.Series, total, tp.MinTotal, len(matched))
	}
	if tp.MinRate > 0 {
		horizon := time.Duration(store.Windows()) * store.Interval
		if horizon <= 0 {
			return fmt.Sprintf("slo throughput %s: no completed sampling windows", tp.Series)
		}
		rate := float64(total) / horizon.Seconds()
		if rate < tp.MinRate {
			return fmt.Sprintf("slo throughput %s: rate %.4g/s < floor %.4g/s over %v",
				tp.Series, rate, tp.MinRate, horizon)
		}
	}
	return ""
}

func (eb ErrorBudgetSLO) check(store *timeseries.Store) string {
	matched, msg := matchedSeries(store, eb.Series, "error-budget")
	if msg != "" {
		return msg
	}
	// Sum the matched series per window so the burn check sees the combined
	// error stream, not each series in isolation.
	combined := make([]int64, store.Windows())
	var total int64
	for _, s := range matched {
		for i, v := range s.Values(store.Windows()) {
			combined[i] += v
			total += v
		}
	}
	if total > eb.Budget {
		return fmt.Sprintf("slo error-budget %s: total %d > budget %d over %d windows",
			eb.Series, total, eb.Budget, store.Windows())
	}
	if eb.Window > 0 {
		var burn int64
		for i, v := range combined {
			burn += v
			if i >= eb.Window {
				burn -= combined[i-eb.Window]
			}
			if burn > eb.MaxBurn {
				from := time.Duration(max(0, i-eb.Window+1)) * store.Interval
				to := time.Duration(i+1) * store.Interval
				return fmt.Sprintf("slo error-budget %s: burn %d > %d in the %d-window span [%v, %v)",
					eb.Series, burn, eb.MaxBurn, eb.Window, from, to)
			}
		}
	}
	return ""
}

// matchSeries matches name against pattern, where '*' matches any (possibly
// empty) run of characters.
func matchSeries(pattern, name string) bool {
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == name
	}
	if !strings.HasPrefix(name, parts[0]) {
		return false
	}
	rest := name[len(parts[0]):]
	last := parts[len(parts)-1]
	for _, mid := range parts[1 : len(parts)-1] {
		if mid == "" {
			continue
		}
		i := strings.Index(rest, mid)
		if i < 0 {
			return false
		}
		rest = rest[i+len(mid):]
	}
	return strings.HasSuffix(rest, last)
}

// --- decoding ---

// decodeSLO parses the optional `slo:` root key. Structural and range
// validation happens here so `simulator validate` rejects a bad block
// without running anything.
func decodeSLO(root *object, s *Spec) error {
	v, ok := root.take("slo")
	if !ok || v == nil {
		return nil
	}
	o, err := asObject(v, "slo")
	if err != nil {
		return err
	}
	sl := &SLOSpec{}
	if sl.Interval, err = o.duration("interval", 0); err != nil {
		return err
	}
	if err := decodeSLOList(o, "latency", func(e *object) error {
		var l LatencySLO
		var err error
		if l.Leg, err = e.str("leg", ""); err != nil {
			return err
		}
		if l.Leg == "" || !strings.Contains(l.Leg, "/") {
			return fmt.Errorf("scenario: %s: leg must be a span label like \"rmf/job\", got %q", e.path, l.Leg)
		}
		if l.Percentile, err = e.float("percentile", 0); err != nil {
			return err
		}
		if l.Percentile <= 0 || l.Percentile > 100 {
			return fmt.Errorf("scenario: %s: percentile %v outside (0, 100]", e.path, l.Percentile)
		}
		if l.Max, err = e.duration("max", 0); err != nil {
			return err
		}
		if l.Max <= 0 {
			return fmt.Errorf("scenario: %s: missing required key \"max\" (the latency ceiling)", e.path)
		}
		var n int64
		if n, err = e.integer("min_count", 0); err != nil {
			return err
		}
		l.MinCount = int(n)
		sl.Latency = append(sl.Latency, l)
		return nil
	}); err != nil {
		return err
	}
	if err := decodeSLOList(o, "throughput", func(e *object) error {
		var tp ThroughputSLO
		var err error
		if tp.Series, err = e.str("series", ""); err != nil {
			return err
		}
		if tp.Series == "" {
			return fmt.Errorf("scenario: %s: missing required key \"series\"", e.path)
		}
		if tp.MinTotal, err = e.integer("min_total", 0); err != nil {
			return err
		}
		if tp.MinRate, err = e.float("min_rate", 0); err != nil {
			return err
		}
		if tp.MinTotal <= 0 && tp.MinRate <= 0 {
			return fmt.Errorf("scenario: %s: needs a floor (\"min_total\" or \"min_rate\" > 0)", e.path)
		}
		sl.Throughput = append(sl.Throughput, tp)
		return nil
	}); err != nil {
		return err
	}
	if err := decodeSLOList(o, "error_budget", func(e *object) error {
		var eb ErrorBudgetSLO
		var err error
		if eb.Series, err = e.str("series", ""); err != nil {
			return err
		}
		if eb.Series == "" {
			return fmt.Errorf("scenario: %s: missing required key \"series\"", e.path)
		}
		if eb.Budget, err = e.integer("budget", 0); err != nil {
			return err
		}
		if eb.Budget < 0 {
			return fmt.Errorf("scenario: %s: budget must be >= 0, got %d", e.path, eb.Budget)
		}
		hasWindow, hasBurn := e.has("window"), e.has("max_burn")
		if hasWindow != hasBurn {
			return fmt.Errorf("scenario: %s: \"window\" and \"max_burn\" come together (a burn rate is errors per window)", e.path)
		}
		var n int64
		if n, err = e.integer("window", 0); err != nil {
			return err
		}
		eb.Window = int(n)
		if hasWindow && eb.Window <= 0 {
			return fmt.Errorf("scenario: %s: window must be >= 1 sample, got %d", e.path, eb.Window)
		}
		if eb.MaxBurn, err = e.integer("max_burn", 0); err != nil {
			return err
		}
		if eb.MaxBurn < 0 {
			return fmt.Errorf("scenario: %s: max_burn must be >= 0, got %d", e.path, eb.MaxBurn)
		}
		sl.Budgets = append(sl.Budgets, eb)
		return nil
	}); err != nil {
		return err
	}
	if err := o.finish(); err != nil {
		return err
	}
	if sl.Objectives() == 0 {
		return fmt.Errorf("scenario %s: slo block declares no objectives (latency, throughput, or error_budget)", s.Name)
	}
	s.SLO = sl
	return nil
}

// decodeSLOList walks one objective list, handing each entry to decode as a
// strict object (every entry must consume all its keys).
func decodeSLOList(o *object, key string, decode func(*object) error) error {
	v, ok := o.take(key)
	if !ok || v == nil {
		return nil
	}
	seq, isSeq := v.([]any)
	if !isSeq {
		return fmt.Errorf("scenario: slo.%s must be a list, got %s", key, typeName(v))
	}
	for i, e := range seq {
		eo, err := asObject(e, fmt.Sprintf("slo.%s[%d]", key, i))
		if err != nil {
			return err
		}
		if err := decode(eo); err != nil {
			return err
		}
		if err := eo.finish(); err != nil {
			return err
		}
	}
	return nil
}
