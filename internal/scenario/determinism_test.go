package scenario

import (
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
)

func shippedFiles(t *testing.T) []string {
	t.Helper()
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read scenarios dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && (strings.HasSuffix(e.Name(), ".yaml") || strings.HasSuffix(e.Name(), ".yml") || strings.HasSuffix(e.Name(), ".json")) {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) < 10 {
		t.Fatalf("scenario library shrank: %d files, want >= 10", len(files))
	}
	return files
}

// TestShippedScenariosValidate: every shipped scenario file must parse and
// validate — host names, link names, assertion vocabulary, shape constraints.
func TestShippedScenariosValidate(t *testing.T) {
	for _, file := range shippedFiles(t) {
		t.Run(file, func(t *testing.T) {
			if err := Validate(loadShipped(t, file)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShippedScenariosRun is the determinism wall: every shipped scenario
// runs (Run itself executes each workload twice and fails on any trace-hash
// or fingerprint divergence) and passes all its declared assertions.
func TestShippedScenariosRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario library (~5s of virtual-time runs) in -short mode")
	}
	for _, file := range shippedFiles(t) {
		t.Run(file, func(t *testing.T) {
			res, err := Run(loadShipped(t, file))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Passed {
				t.Fatalf("failures: %v", res.Failures)
			}
			if res.Invariants < 1 {
				t.Fatalf("invariants = %d — even a bare scenario carries the determinism invariant", res.Invariants)
			}
		})
	}
}

// TestParallelSitesInvariance: the partitioned parallel-DES run must agree
// with the monolithic oracle on every result field. Only the trace-hash
// suffix may differ (one hash per kernel, so the count varies with the
// partition layout) — elapsed virtual time, best, and traversed may not.
func TestParallelSitesInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("three grid solves in -short mode")
	}
	s := loadShipped(t, "grid-multi-site.yaml")
	resultPrefix := func(fp string) string {
		if i := strings.Index(fp, " trace="); i >= 0 {
			return fp[:i]
		}
		return fp
	}
	var prefixes []string
	for _, sites := range []int{0, 2, 3} {
		s.Topology.ParallelSites = sites
		res, err := Run(s)
		if err != nil {
			t.Fatalf("sites=%d: %v", sites, err)
		}
		if !res.Passed {
			t.Fatalf("sites=%d: failures: %v", sites, res.Failures)
		}
		prefixes = append(prefixes, resultPrefix(res.Fingerprint))
	}
	for i := 1; i < len(prefixes); i++ {
		if prefixes[i] != prefixes[0] {
			t.Errorf("partitioned run diverged from the monolithic oracle:\n sites=0 %q\n variant %q", prefixes[0], prefixes[i])
		}
	}
}

// TestWorkerInvariance: the bench sweeps parallelize measurement points
// across workers, but every point runs in its own testbed — the worker
// count must never show up in the results.
func TestWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated sweeps in -short mode")
	}
	t.Run("table4", func(t *testing.T) {
		s := loadShipped(t, "table4-sweep.yaml")
		var fps []string
		for _, workers := range []int{1, 4} {
			s.Table4.Workers = workers
			res, err := Run(s)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			fps = append(fps, res.Fingerprint)
		}
		if fps[0] != fps[1] {
			t.Errorf("worker count leaked into results:\n w=1 %q\n w=4 %q", fps[0], fps[1])
		}
	})
	t.Run("gridftp", func(t *testing.T) {
		s := loadShipped(t, "gridftp-congestion.yaml")
		var fps []string
		for _, workers := range []int{1, 4} {
			s.GridFTP.Workers = workers
			res, err := Run(s)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			fps = append(fps, res.Fingerprint)
		}
		if fps[0] != fps[1] {
			t.Errorf("worker count leaked into results:\n w=1 %q\n w=4 %q", fps[0], fps[1])
		}
	})
}

// TestGOMAXPROCSInvariance: scheduler parallelism must not perturb a
// partitioned grid run — the conservative sync protocol, not the OS
// scheduler, orders cross-site events.
func TestGOMAXPROCSInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated grid solves in -short mode")
	}
	s := loadShipped(t, "grid-multi-site.yaml")
	var hashes, fps []string
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		res, err := Run(s)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		if !res.Passed {
			t.Fatalf("GOMAXPROCS=%d: failures: %v", procs, res.Failures)
		}
		hashes = append(hashes, res.TraceHash)
		fps = append(fps, res.Fingerprint)
	}
	if hashes[0] != hashes[1] || fps[0] != fps[1] {
		t.Errorf("GOMAXPROCS leaked into the run:\n p=1 %s %q\n p=4 %s %q",
			hashes[0], fps[0], hashes[1], fps[1])
	}
}
