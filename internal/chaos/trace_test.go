package chaos

import (
	"runtime"
	"testing"

	"nxcluster/internal/obs"
)

// chaosTraceHash runs the full fault-injection scenario — crash, WAN flap,
// boundary flap, every recovery layer engaged — with tracing on and a
// seeded kernel RNG, and hashes the byte-exact JSONL trace.
func chaosTraceHash(t *testing.T) uint64 {
	t.Helper()
	cfg := baseConfig()
	cfg.Plan = chaosPlan()
	o := obs.New()
	cfg.Options.Obs = o
	cfg.Options.Seed = 42
	rep := runOnce(t, cfg)
	if !rep.Completed {
		t.Fatal("traced chaos run did not complete before the horizon")
	}
	if rep.Best != rep.WantBest {
		t.Fatalf("traced chaos run best = %d, want %d", rep.Best, rep.WantBest)
	}
	if o.Len() == 0 {
		t.Fatal("traced chaos run recorded no events")
	}
	return o.Hash()
}

// TestChaosTraceDeterministic pins the whole observability determinism
// story at its hardest point: a chaos run — faults, backoff jitter from the
// kernel's seeded stream, requeues, relay re-registration — replays with a
// bit-identical trace, run to run and across host thread counts. Any
// wall-clock or global-randomness leak into retry timing or event order
// breaks this test.
func TestChaosTraceDeterministic(t *testing.T) {
	h1 := chaosTraceHash(t)
	h2 := chaosTraceHash(t)
	if h1 != h2 {
		t.Errorf("trace diverged run to run: %#x != %#x", h1, h2)
	}
	prev := runtime.GOMAXPROCS(1)
	h3 := chaosTraceHash(t)
	runtime.GOMAXPROCS(prev)
	if h3 != h1 {
		t.Errorf("trace diverged across host threads: GOMAXPROCS=1 %#x, parallel %#x", h3, h1)
	}
}
