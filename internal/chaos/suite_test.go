package chaos

import (
	"testing"
)

// TestChaosSuite runs the full default scenario library: every invariant
// must hold and every scenario must replay to an identical trace hash.
func TestChaosSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos suite in -short mode")
	}
	res, err := RunSuite(DefaultSuite(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Scenarios {
		for _, f := range s.Failures {
			t.Errorf("%s: %s", s.Name, f)
		}
	}
	scen, inv, fail := res.Counts()
	t.Logf("suite: %d scenarios, %d invariants, %d failures", scen, inv, fail)
	if scen < 6 {
		t.Errorf("suite has %d scenarios, want >= 6", scen)
	}
}

// TestChaosSuiteNamesUnique guards the JSON baseline's key space.
func TestChaosSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range DefaultSuite() {
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Compare != nil && s.Baseline == nil {
			t.Errorf("%s: Compare set without Baseline", s.Name)
		}
	}
}
