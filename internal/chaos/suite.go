package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nxcluster/internal/cluster"
	"nxcluster/internal/hbm"
	"nxcluster/internal/knapsack"
	"nxcluster/internal/obs"
	"nxcluster/internal/proxy"
	"nxcluster/internal/rmf"
	"nxcluster/internal/simnet"
)

// Invariant is one end-of-run assertion over a chaos Report. Check returns
// nil when the invariant holds and a descriptive error when it does not.
type Invariant struct {
	Name  string
	Check func(*Report) error
}

// Scenario is one declarative chaos experiment: a Config (topology options,
// fault schedule, workload knobs), the invariants its report must satisfy,
// and optionally a Baseline config whose report the primary is Compared
// against (for "mitigation beats no-mitigation" claims).
//
// Every scenario is additionally run twice and the two runs must agree on the
// full observability trace hash and on a report fingerprint — fault injection
// must never cost reproducibility.
type Scenario struct {
	Name string
	// Desc is a one-line statement of what the scenario demonstrates.
	Desc string
	// Config is the faulted run under test.
	Config Config
	// Baseline, when non-nil, is a second run (typically the same faults
	// without the mitigation) handed to Compare.
	Baseline *Config
	// Invariants are checked against the primary run's report.
	Invariants []Invariant
	// Compare, when set (requires Baseline), cross-checks the two reports —
	// e.g. speculation must beat the no-speculation baseline on elapsed
	// virtual time while both keep the exact optimum.
	Compare func(rep, base *Report) error
}

// ScenarioResult is the outcome of one scenario, JSON-serializable for the
// committed CHAOS_suite.json baseline benchdiff gates on.
type ScenarioResult struct {
	Name       string   `json:"name"`
	Passed     bool     `json:"passed"`
	Invariants int      `json:"invariants"`
	Failures   []string `json:"failures,omitempty"`
	// TraceHash is the FNV-64a hash of the run's full observability trace,
	// identical across the double run (hex).
	TraceHash string `json:"trace_hash"`
	// Elapsed is the knapsack search's elapsed virtual time; JobDoneMS is
	// when the RMF job's Wait returned (0 if no control plane).
	ElapsedMS int64 `json:"elapsed_ms"`
	JobDoneMS int64 `json:"job_done_ms"`

	// Report and BaseReport carry the full run outcomes for tests and
	// logging; they are not part of the JSON baseline.
	Report     *Report `json:"-"`
	BaseReport *Report `json:"-"`
	// Obs is the primary run's observer — the causal trace SLO evaluation
	// reads. Not part of the JSON baseline.
	Obs *obs.Observer `json:"-"`
}

// SuiteResult aggregates a whole suite run.
type SuiteResult struct {
	Scenarios []ScenarioResult `json:"scenarios"`
}

// Passed reports whether every scenario passed.
func (r *SuiteResult) Passed() bool {
	for _, s := range r.Scenarios {
		if !s.Passed {
			return false
		}
	}
	return true
}

// Counts returns the scenario count, the total invariants checked (including
// the implicit determinism check and any baseline Compare), and the total
// failures.
func (r *SuiteResult) Counts() (scenarios, invariants, failures int) {
	for _, s := range r.Scenarios {
		scenarios++
		invariants += s.Invariants
		failures += len(s.Failures)
	}
	return
}

// fingerprint reduces a report to a canonical string so double runs can be
// compared field by field (map iteration order excluded).
func fingerprint(rep *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "completed=%v best=%d elapsed=%v traversed=%d orphans=%d",
		rep.Completed, rep.Best, rep.Elapsed, rep.TotalTraversed, rep.Orphans)
	fmt.Fprintf(&b, " reg=%d boots=%d suspectperiods=%d",
		rep.InnerRegistrations, rep.OuterBoots, rep.InnerStats.SuspectPeriods)
	fmt.Fprintf(&b, " joberr=%v requeues=%d spec=%d res=%s done=%v",
		rep.JobErr, rep.JobRequeues, rep.JobSpeculations, rep.JobResource, rep.JobDone)
	fmt.Fprintf(&b, " suspects=%d downs=%d extrajobs=%d", rep.HBMSuspects, rep.HBMDowns, rep.ExtraJobsDone)
	names := make([]string, 0, len(rep.HBM))
	for n := range rep.HBM {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, " hbm.%s=%v", n, rep.HBM[n])
	}
	return b.String()
}

// RunScenario executes one scenario: the faulted config twice (determinism
// check), the baseline once if present, then every invariant. Harness errors
// (a config the runner rejects) come back as the error; invariant violations
// and determinism breaks are recorded as failures in the result.
func RunScenario(s Scenario) (*ScenarioResult, error) {
	runWith := func(cfg Config) (*Report, *obs.Observer, error) {
		o := obs.New()
		cfg.Options.Obs = o
		rep, err := Run(cfg)
		if err != nil {
			return nil, nil, err
		}
		return rep, o, nil
	}
	rep, o1, err := runWith(s.Config)
	if err != nil {
		return nil, fmt.Errorf("chaos %s: %w", s.Name, err)
	}
	rep2, o2, err := runWith(s.Config)
	if err != nil {
		return nil, fmt.Errorf("chaos %s (replay): %w", s.Name, err)
	}
	h1, h2 := o1.Hash(), o2.Hash()
	res := &ScenarioResult{
		Name:      s.Name,
		TraceHash: fmt.Sprintf("%016x", h1),
		ElapsedMS: rep.Elapsed.Milliseconds(),
		JobDoneMS: rep.JobDone.Milliseconds(),
		Report:    rep,
		Obs:       o1,
	}
	// The determinism invariant is implicit on every scenario: identical
	// trace hash and identical report fingerprint across the double run.
	res.Invariants++
	if h1 != h2 {
		res.Failures = append(res.Failures, fmt.Sprintf("determinism: trace hash %016x != %016x across identical runs", h1, h2))
	} else if f1, f2 := fingerprint(rep), fingerprint(rep2); f1 != f2 {
		res.Failures = append(res.Failures, fmt.Sprintf("determinism: reports diverge: %q vs %q", f1, f2))
	}
	for _, inv := range s.Invariants {
		res.Invariants++
		if err := inv.Check(rep); err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("%s: %v", inv.Name, err))
		}
	}
	if s.Baseline != nil {
		base, _, err := runWith(*s.Baseline)
		if err != nil {
			return nil, fmt.Errorf("chaos %s (baseline): %w", s.Name, err)
		}
		res.BaseReport = base
		if s.Compare != nil {
			res.Invariants++
			if err := s.Compare(rep, base); err != nil {
				res.Failures = append(res.Failures, fmt.Sprintf("baseline-compare: %v", err))
			}
		}
	}
	res.Passed = len(res.Failures) == 0
	return res, nil
}

// RunSuite executes every scenario, logging one line per scenario through
// logf (nil for silent).
func RunSuite(scenarios []Scenario, logf func(format string, args ...interface{})) (*SuiteResult, error) {
	out := &SuiteResult{}
	for _, s := range scenarios {
		res, err := RunScenario(s)
		if err != nil {
			return nil, err
		}
		out.Scenarios = append(out.Scenarios, *res)
		if logf != nil {
			status := "PASS"
			if !res.Passed {
				status = "FAIL"
			}
			logf("%-26s %s  invariants=%d elapsed=%dms job=%dms trace=%s",
				s.Name, status, res.Invariants, res.ElapsedMS, res.JobDoneMS, res.TraceHash)
			for _, f := range res.Failures {
				logf("    FAIL %s", f)
			}
		}
	}
	return out, nil
}

// --- Invariant library ---

// ExactOptimum demands the search completed with the bit-exact sequential
// optimum — the invariant the whole exercise hangs on.
func ExactOptimum() Invariant {
	return Invariant{Name: "exact-optimum", Check: func(r *Report) error {
		if !r.Completed {
			return fmt.Errorf("search did not complete before the horizon")
		}
		if r.Best != r.WantBest {
			return fmt.Errorf("best = %d, want %d", r.Best, r.WantBest)
		}
		return nil
	}}
}

// AllWorkDone demands no tree node was lost: reclaimed batches may be
// re-expanded (work grows), but the traversal can never undercount.
func AllWorkDone() Invariant {
	return Invariant{Name: "all-work-done", Check: func(r *Report) error {
		if r.TotalTraversed < r.WantNodes {
			return fmt.Errorf("traversed %d < %d: work was lost", r.TotalTraversed, r.WantNodes)
		}
		return nil
	}}
}

// NoOrphans demands no slave gave up with ErrOrphaned (the master survived).
func NoOrphans() Invariant {
	return Invariant{Name: "no-orphans", Check: func(r *Report) error {
		if r.Orphans != 0 {
			return fmt.Errorf("%d orphaned slaves", r.Orphans)
		}
		return nil
	}}
}

// NoRankErrors demands every rank's error slot is nil (killed ranks stay nil).
func NoRankErrors() Invariant {
	return Invariant{Name: "no-rank-errors", Check: func(r *Report) error {
		for i, e := range r.RankErrs {
			if e != nil {
				return fmt.Errorf("rank %d: %v", i, e)
			}
		}
		return nil
	}}
}

// Registrations bounds the inner relay's registration-session count:
// exactly 1 on a healthy or merely degraded boundary, >= 2 after a flap that
// outlives the keepalive timeout.
func Registrations(min, max int) Invariant {
	return Invariant{Name: "registrations", Check: func(r *Report) error {
		if r.InnerRegistrations < min || (max > 0 && r.InnerRegistrations > max) {
			return fmt.Errorf("registrations = %d, want [%d,%d]", r.InnerRegistrations, min, max)
		}
		return nil
	}}
}

// SuspectPeriods demands the inner relay rode out at least min keepalive
// misses as SUSPECT instead of tearing the session down.
func SuspectPeriods(min int) Invariant {
	return Invariant{Name: "suspect-periods", Check: func(r *Report) error {
		if r.InnerStats.SuspectPeriods < min {
			return fmt.Errorf("suspect periods = %d, want >= %d", r.InnerStats.SuspectPeriods, min)
		}
		return nil
	}}
}

// JobCompleted demands the RMF job's Wait returned cleanly on some resource.
func JobCompleted() Invariant {
	return Invariant{Name: "job-completed", Check: func(r *Report) error {
		if r.JobErr != nil {
			return fmt.Errorf("job error: %v", r.JobErr)
		}
		if r.JobResource == "" {
			return fmt.Errorf("job never ran")
		}
		return nil
	}}
}

// JobOffHost demands the job did NOT finish on the named (crashed or
// straggling) host.
func JobOffHost(host string) Invariant {
	return Invariant{Name: "job-off-" + host, Check: func(r *Report) error {
		if r.JobResource == host {
			return fmt.Errorf("job finished on %s", host)
		}
		return nil
	}}
}

// MinRequeues demands RMF requeued the job at least min times.
func MinRequeues(min int) Invariant {
	return Invariant{Name: "min-requeues", Check: func(r *Report) error {
		if r.JobRequeues < min {
			return fmt.Errorf("requeues = %d, want >= %d", r.JobRequeues, min)
		}
		return nil
	}}
}

// MaxRequeues bounds requeues from above (speculation scenarios promote the
// copy instead of requeueing).
func MaxRequeues(max int) Invariant {
	return Invariant{Name: "max-requeues", Check: func(r *Report) error {
		if r.JobRequeues > max {
			return fmt.Errorf("requeues = %d, want <= %d", r.JobRequeues, max)
		}
		return nil
	}}
}

// MinSpeculations demands at least min speculative copies launched.
func MinSpeculations(min int) Invariant {
	return Invariant{Name: "min-speculations", Check: func(r *Report) error {
		if r.JobSpeculations < min {
			return fmt.Errorf("speculations = %d, want >= %d", r.JobSpeculations, min)
		}
		return nil
	}}
}

// ElapsedCeiling demands the search finished within d of virtual time —
// recovery may slow the run but must not let it crawl.
func ElapsedCeiling(d time.Duration) Invariant {
	return Invariant{Name: "elapsed-ceiling", Check: func(r *Report) error {
		if r.Elapsed > d {
			return fmt.Errorf("elapsed %v > ceiling %v", r.Elapsed, d)
		}
		return nil
	}}
}

// HBMAllUp demands every monitored process is UP at the horizon (restarted
// hosts rebooted their reporters; degraded hosts were restored).
func HBMAllUp() Invariant {
	return Invariant{Name: "hbm-all-up", Check: func(r *Report) error {
		for name, h := range r.HBM {
			if h != hbm.Up {
				return fmt.Errorf("HBM %s = %v at horizon, want Up", name, h)
			}
		}
		return nil
	}}
}

// HBMSuspectsSeen demands the monitor classified at least min transitions
// into SUSPECT — the gray-failure signal.
func HBMSuspectsSeen(min int64) Invariant {
	return Invariant{Name: "hbm-suspects", Check: func(r *Report) error {
		if r.HBMSuspects < min {
			return fmt.Errorf("suspect transitions = %d, want >= %d", r.HBMSuspects, min)
		}
		return nil
	}}
}

// ExtraJobsDone demands at least min flash-crowd jobs (Config.ExtraJobs)
// completed cleanly before the horizon.
func ExtraJobsDone(min int) Invariant {
	return Invariant{Name: "extra-jobs-done", Check: func(r *Report) error {
		if r.ExtraJobsDone < min {
			return fmt.Errorf("extra jobs done = %d, want >= %d", r.ExtraJobsDone, min)
		}
		return nil
	}}
}

// HBMNoDowns demands the monitor never flapped a slow-but-alive host through
// DOWN — the point of the SUSPECT state.
func HBMNoDowns() Invariant {
	return Invariant{Name: "hbm-no-downs", Check: func(r *Report) error {
		if r.HBMDowns != 0 {
			return fmt.Errorf("down transitions = %d, want 0", r.HBMDowns)
		}
		return nil
	}}
}

// --- Default suite ---

// suiteBase is the Table-4 wide-area run every suite scenario starts from.
func suiteBase() Config {
	return baseSuiteConfig(0)
}

func baseSuiteConfig(missBudget int) Config {
	return Config{
		Items:    24,
		Capacity: 3,
		System:   cluster.SystemWide,
		UseProxy: true,
		// The suite runs with slave liveness heartbeats on and a steal budget
		// (20 x 500ms) sized for gray failures: delayed replies must not
		// exhaust a slave's patience before the master's per-slave reclaim
		// (SlaveTimeout past the last heartbeat) can unstick a dead host's
		// outstanding batch.
		FT: knapsack.FTParams{
			Params: knapsack.Params{
				Interval:  4,
				StealUnit: 4,
				NodeCost:  8 * time.Millisecond,
			},
			SlaveTimeout:   2500 * time.Millisecond,
			StealTimeout:   500 * time.Millisecond,
			StealRetries:   20,
			HeartbeatEvery: time.Second,
		},
		Horizon: 90 * time.Second,
		Keepalive: proxy.KeepaliveConfig{
			Interval:   200 * time.Millisecond,
			Timeout:    400 * time.Millisecond,
			MissBudget: missBudget,
		},
		ControlPlane: true,
	}
}

// DefaultSuite is the scenario library: every gray-failure mode the fault
// model can express, each paired with the mitigation that answers it.
func DefaultSuite() []Scenario {
	return []Scenario{
		partitionThenHeal(),
		flappingBoundary(),
		slowNodeStraggler(),
		suspectStraggler(),
		degradedBoundary(),
		asymmetricWAN(),
		rollingSiteOutage(),
		crashDuringSpeculation(),
	}
}

// partitionThenHeal severs every link between the RWCP side and the ETL side
// for 2s mid-search. The cut is shorter than the steal budget, so the search
// rides it out: exact optimum, no orphans, and — because the firewall
// boundary link is inside the RWCP group — a single registration session.
func partitionThenHeal() Scenario {
	cfg := suiteBase()
	p := &simnet.FaultPlan{}
	p.Partition(cluster.RWCPSideNodes(), cluster.ETLSideNodes(), 2*time.Second, 4*time.Second)
	cfg.Plan = p
	return Scenario{
		Name:   "partition-then-heal",
		Desc:   "2s full site partition heals before the steal budget expires",
		Config: cfg,
		Invariants: []Invariant{
			ExactOptimum(), AllWorkDone(), NoOrphans(), NoRankErrors(),
			Registrations(1, 1), JobCompleted(), HBMAllUp(), ElapsedCeiling(60 * time.Second),
		},
	}
}

// flappingBoundary flaps the firewall boundary link with down windows longer
// than the keepalive timeout: the registration session must break and
// re-establish at least once, while the search still converges exactly.
func flappingBoundary() Scenario {
	cfg := suiteBase()
	p := &simnet.FaultPlan{}
	p.LinkFlap("rwcp-gw", cluster.RWCPOuter, 1500*time.Millisecond, 0.4, 2*time.Second, 6500*time.Millisecond)
	cfg.Plan = p
	return Scenario{
		Name:   "flapping-boundary",
		Desc:   "boundary link flaps past the keepalive timeout; relay re-registers",
		Config: cfg,
		Invariants: []Invariant{
			ExactOptimum(), AllWorkDone(), NoOrphans(), NoRankErrors(),
			Registrations(2, 0), JobCompleted(), HBMAllUp(), ElapsedCeiling(60 * time.Second),
		},
	}
}

// slowNodeStraggler slows the job's host by 4x and lets the progress
// deadline launch a speculative copy on a healthy node. The Baseline runs
// the identical fault without speculation; Compare demands the copy won on
// elapsed virtual time while both runs kept the exact optimum.
func slowNodeStraggler() Scenario {
	cfg := suiteBase()
	cfg.JobCompute = true
	cfg.Recovery = &rmf.RecoveryPolicy{StatusRetries: 3, SpeculateAfter: 2 * time.Second}
	p := &simnet.FaultPlan{}
	p.SlowHost("compas00", 4, 400*time.Millisecond, 60*time.Second)
	cfg.Plan = p

	base := cfg
	base.Recovery = &rmf.RecoveryPolicy{StatusRetries: 3}
	basePlan := &simnet.FaultPlan{}
	basePlan.SlowHost("compas00", 4, 400*time.Millisecond, 60*time.Second)
	base.Plan = basePlan

	return Scenario{
		Name:     "slow-node-straggler",
		Desc:     "4x straggler; speculation beats the no-speculation baseline",
		Config:   cfg,
		Baseline: &base,
		Invariants: []Invariant{
			ExactOptimum(), AllWorkDone(), JobCompleted(), ElapsedCeiling(60 * time.Second),
			MinSpeculations(1), MaxRequeues(0), JobOffHost("compas00"),
		},
		Compare: func(rep, base *Report) error {
			if base.JobErr != nil {
				return fmt.Errorf("baseline job error: %v", base.JobErr)
			}
			if rep.JobDone >= base.JobDone {
				return fmt.Errorf("speculation did not win: job done at %v, baseline %v", rep.JobDone, base.JobDone)
			}
			if rep.Best != rep.WantBest || base.Best != base.WantBest {
				return fmt.Errorf("optimum drifted: spec %d base %d want %d", rep.Best, base.Best, rep.WantBest)
			}
			return nil
		},
	}
}

// suspectStraggler slows one COMPaS node hard enough that its heartbeat
// gaps cross the DOWN threshold, with a SuspectWindow configured: the
// monitor must classify it SUSPECT — never DOWN — and clear it after the
// host is restored.
func suspectStraggler() Scenario {
	cfg := suiteBase()
	cfg.SuspectWindow = 5 * time.Second
	cfg.BeatCost = 100 * time.Millisecond
	cfg.HBMLateAfter = 600 * time.Millisecond
	cfg.HBMDownAfter = 1200 * time.Millisecond
	p := &simnet.FaultPlan{}
	p.SlowHost("compas07", 6, 1*time.Second, 50*time.Second)
	cfg.Plan = p
	return Scenario{
		Name:   "suspect-straggler",
		Desc:   "6x straggler classified SUSPECT, not DOWN/UP flapping",
		Config: cfg,
		Invariants: []Invariant{
			ExactOptimum(), AllWorkDone(), JobCompleted(), ElapsedCeiling(60 * time.Second),
			HBMSuspectsSeen(1), HBMNoDowns(), HBMAllUp(),
		},
	}
}

// degradedBoundary adds 300ms each way on the firewall boundary link —
// enough that every pong misses the keepalive timeout — with a MissBudget
// that rides the delay out as SUSPECT. The Baseline has no budget and must
// flap through at least one re-registration.
func degradedBoundary() Scenario {
	cfg := baseSuiteConfig(2)
	p := &simnet.FaultPlan{}
	p.LinkDegrade("rwcp-gw", cluster.RWCPOuter, 300*time.Millisecond, 0, 1*time.Second, 6*time.Second)
	p.LinkDegrade(cluster.RWCPOuter, "rwcp-gw", 300*time.Millisecond, 0, 1*time.Second, 6*time.Second)
	cfg.Plan = p

	base := baseSuiteConfig(0)
	basePlan := &simnet.FaultPlan{}
	basePlan.LinkDegrade("rwcp-gw", cluster.RWCPOuter, 300*time.Millisecond, 0, 1*time.Second, 6*time.Second)
	basePlan.LinkDegrade(cluster.RWCPOuter, "rwcp-gw", 300*time.Millisecond, 0, 1*time.Second, 6*time.Second)
	base.Plan = basePlan

	return Scenario{
		Name:     "degraded-boundary",
		Desc:     "slow boundary link ridden out as SUSPECT under a miss budget",
		Config:   cfg,
		Baseline: &base,
		Invariants: []Invariant{
			ExactOptimum(), AllWorkDone(), JobCompleted(), ElapsedCeiling(75 * time.Second),
			Registrations(1, 1), SuspectPeriods(1),
		},
		Compare: func(rep, base *Report) error {
			if base.InnerRegistrations < 2 {
				return fmt.Errorf("baseline without a miss budget re-registered %d times, want >= 2 (the budget should be what prevents the flap)", base.InnerRegistrations)
			}
			return nil
		},
	}
}

// asymmetricWAN degrades only one direction of the WAN link: steal replies
// crawl while requests fly. The search slows but must stay exact, and the
// boundary session (unaffected) must stay up.
func asymmetricWAN() Scenario {
	cfg := suiteBase()
	p := &simnet.FaultPlan{}
	p.LinkDegrade(cluster.RWCPOuter, "etl-gw", 250*time.Millisecond, 0, 1*time.Second, 8*time.Second)
	cfg.Plan = p
	return Scenario{
		Name:   "asymmetric-wan",
		Desc:   "one-way 250ms WAN degradation; search exact, no session flap",
		Config: cfg,
		Invariants: []Invariant{
			ExactOptimum(), AllWorkDone(), NoOrphans(), NoRankErrors(),
			Registrations(1, 1), JobCompleted(), HBMAllUp(), ElapsedCeiling(60 * time.Second),
		},
	}
}

// rollingSiteOutage crashes three COMPaS nodes in staggered windows; the job
// chases the failures across the site and the FT scheduler reclaims each
// dead rank's work.
func rollingSiteOutage() Scenario {
	cfg := suiteBase()
	p := &simnet.FaultPlan{}
	p.CrashWindow("compas00", 1*time.Second, 3*time.Second)
	p.CrashWindow("compas01", 3500*time.Millisecond, 5500*time.Millisecond)
	p.CrashWindow("compas02", 6*time.Second, 8*time.Second)
	cfg.Plan = p
	return Scenario{
		Name:   "rolling-site-outage",
		Desc:   "three staggered node crashes; job requeued ahead of each",
		Config: cfg,
		Invariants: []Invariant{
			ExactOptimum(), AllWorkDone(), NoOrphans(), NoRankErrors(),
			JobCompleted(), MinRequeues(1), HBMAllUp(), ElapsedCeiling(60 * time.Second),
		},
	}
}

// crashDuringSpeculation crashes the straggler while its speculative copy is
// in flight: the copy must be promoted (no requeue) and the job completes
// off the dead node.
func crashDuringSpeculation() Scenario {
	cfg := suiteBase()
	cfg.JobCompute = true
	// The crashed host's reclaimed batch is re-expanded while the other
	// slaves starve; give them patience to ride the re-expansion out.
	cfg.FT.StealRetries = 40
	cfg.Recovery = &rmf.RecoveryPolicy{StatusRetries: 3, SpeculateAfter: 2 * time.Second}
	p := &simnet.FaultPlan{}
	p.SlowHost("compas00", 4, 400*time.Millisecond, 60*time.Second)
	p.CrashWindow("compas00", 4*time.Second, 8*time.Second)
	cfg.Plan = p
	return Scenario{
		Name:   "crash-during-speculation",
		Desc:   "straggler crashes mid-speculation; the copy is promoted",
		Config: cfg,
		Invariants: []Invariant{
			ExactOptimum(), AllWorkDone(), NoOrphans(), JobCompleted(), ElapsedCeiling(60 * time.Second),
			MinSpeculations(1), MaxRequeues(0), JobOffHost("compas00"),
		},
	}
}
