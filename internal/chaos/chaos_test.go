package chaos

import (
	"testing"
	"time"

	"nxcluster/internal/cluster"
	"nxcluster/internal/hbm"
	"nxcluster/internal/knapsack"
	"nxcluster/internal/proxy"
	"nxcluster/internal/simnet"
)

// baseConfig is the Table-4-style wide-area run every chaos test starts
// from: the 20-processor wide-area cluster through the Nexus Proxy, with
// the full control plane up.
func baseConfig() Config {
	return Config{
		Items:    24,
		Capacity: 3,
		System:   cluster.SystemWide,
		UseProxy: true,
		FT: knapsack.FTParams{
			Params: knapsack.Params{
				Interval:  4,
				StealUnit: 4,
				NodeCost:  8 * time.Millisecond,
			},
			SlaveTimeout: 2500 * time.Millisecond,
			StealTimeout: 500 * time.Millisecond,
			StealRetries: 10,
		},
		Horizon: 90 * time.Second,
		Keepalive: proxy.KeepaliveConfig{
			Interval: 200 * time.Millisecond,
			Timeout:  400 * time.Millisecond,
		},
		ControlPlane: true,
	}
}

// chaosPlan is the seeded fault schedule: one COMPaS node (which carries a
// knapsack rank, a Q server, and a heartbeat reporter) crashes at 1s and
// restarts at 5s; the WAN flaps for a second mid-search; and the firewall
// boundary link flaps long enough to kill the proxy registration session.
func chaosPlan() *simnet.FaultPlan {
	p := &simnet.FaultPlan{}
	p.CrashWindow("compas00", 1*time.Second, 5*time.Second)
	p.LinkOutage(cluster.RWCPOuter, "etl-gw", 3*time.Second, 4*time.Second)
	p.LinkOutage("rwcp-gw", cluster.RWCPOuter, 6*time.Second, 7500*time.Millisecond)
	return p
}

// runOnce fails the test on harness errors.
func runOnce(t *testing.T, cfg Config) *Report {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestChaosBaselineFaultFree pins the healthy run: exact optimum, every
// node expanded exactly once, a single registration session, no requeues.
func TestChaosBaselineFaultFree(t *testing.T) {
	rep := runOnce(t, baseConfig())
	if !rep.Completed {
		t.Fatal("baseline did not complete before the horizon")
	}
	if rep.Best != rep.WantBest {
		t.Fatalf("baseline best = %d, want %d", rep.Best, rep.WantBest)
	}
	if rep.TotalTraversed != rep.WantNodes {
		t.Fatalf("baseline traversed %d nodes, want exactly %d", rep.TotalTraversed, rep.WantNodes)
	}
	for i, e := range rep.RankErrs {
		if e != nil {
			t.Errorf("rank %d: %v", i, e)
		}
	}
	if rep.InnerRegistrations != 1 {
		t.Errorf("registrations = %d, want 1", rep.InnerRegistrations)
	}
	if rep.JobErr != nil || rep.JobRequeues != 0 {
		t.Errorf("job err=%v requeues=%d, want clean run", rep.JobErr, rep.JobRequeues)
	}
	for name, h := range rep.HBM {
		if h != hbm.Up {
			t.Errorf("HBM %s = %v, want Up", name, h)
		}
	}
	t.Logf("baseline: elapsed=%v traversed=%d job on %s", rep.Elapsed, rep.TotalTraversed, rep.JobResource)
}

// TestChaosRecoveryEndToEnd is the acceptance scenario: under the full
// fault plan the optimum must be bit-exact, the inner relay must have
// re-registered, HBM must show the restarted Q server UP again, and the
// RMF job must have been requeued off the crashed node and completed.
func TestChaosRecoveryEndToEnd(t *testing.T) {
	base := runOnce(t, baseConfig())
	if !base.Completed || base.Best != base.WantBest {
		t.Fatalf("baseline broken: completed=%v best=%d want=%d", base.Completed, base.Best, base.WantBest)
	}

	cfg := baseConfig()
	cfg.Plan = chaosPlan()
	rep := runOnce(t, cfg)

	if !rep.Completed {
		t.Fatal("faulted run did not complete before the horizon")
	}
	if rep.Best != rep.WantBest {
		t.Fatalf("faulted best = %d, want %d: faults changed the optimum", rep.Best, rep.WantBest)
	}
	// Reclaimed batches are re-expanded; work can only grow, never vanish.
	if rep.TotalTraversed < rep.WantNodes {
		t.Fatalf("faulted traversed %d < %d: work was lost", rep.TotalTraversed, rep.WantNodes)
	}
	// Losing a slave for good slows the search but must not hang it.
	if rep.Elapsed < base.Elapsed {
		t.Errorf("faulted elapsed %v < baseline %v", rep.Elapsed, base.Elapsed)
	}
	if rep.Elapsed > 5*base.Elapsed {
		t.Errorf("faulted elapsed %v > 5x baseline %v: recovery too slow", rep.Elapsed, base.Elapsed)
	}
	// compas00 carries rank 4; its process was killed, so its error slot
	// stays nil and nobody else may have failed.
	for i, e := range rep.RankErrs {
		if e != nil {
			t.Errorf("rank %d: %v", i, e)
		}
	}
	if rep.Orphans != 0 {
		t.Errorf("%d orphaned slaves, want 0 (master survived)", rep.Orphans)
	}
	// The boundary flap outlives the keepalive timeout: the inner relay
	// must have established at least one fresh registration session.
	if rep.InnerRegistrations < 2 {
		t.Errorf("registrations = %d, want >= 2 after boundary flap", rep.InnerRegistrations)
	}
	if !rep.OuterStats.InnerConnected {
		t.Error("outer server has no live registration session at the horizon")
	}
	// The job was running on compas00 when it crashed: RMF must requeue it
	// onto a surviving COMPaS node and see it through.
	if rep.JobErr != nil {
		t.Errorf("job error: %v", rep.JobErr)
	}
	if rep.JobRequeues < 1 {
		t.Errorf("job requeues = %d, want >= 1", rep.JobRequeues)
	}
	if rep.JobResource == "compas00" {
		t.Errorf("job finished on the crashed node %s", rep.JobResource)
	}
	// The restarted host's Q server reporter beats again: UP at horizon.
	if h := rep.HBM["compas00"]; h != hbm.Up {
		t.Errorf("HBM compas00 = %v at horizon, want Up after restart", h)
	}
	if h := rep.HBM["nxproxy-inner"]; h != hbm.Up {
		t.Errorf("HBM nxproxy-inner = %v, want Up", h)
	}
	t.Logf("faulted: elapsed=%v (baseline %v) traversed=%d (+%d) registrations=%d requeues=%d job on %s",
		rep.Elapsed, base.Elapsed, rep.TotalTraversed, rep.TotalTraversed-rep.WantNodes,
		rep.InnerRegistrations, rep.JobRequeues, rep.JobResource)
}

// TestChaosDeterministic replays the identical faulted scenario and demands
// a bit-identical report: same elapsed virtual time, same traversal count,
// same recovery counters. Fault injection must not break reproducibility.
func TestChaosDeterministic(t *testing.T) {
	run := func() *Report {
		cfg := baseConfig()
		cfg.Plan = chaosPlan()
		return runOnce(t, cfg)
	}
	a, b := run(), run()
	if a.Best != b.Best || a.Elapsed != b.Elapsed || a.TotalTraversed != b.TotalTraversed {
		t.Fatalf("runs diverge: best %d/%d elapsed %v/%v traversed %d/%d",
			a.Best, b.Best, a.Elapsed, b.Elapsed, a.TotalTraversed, b.TotalTraversed)
	}
	if a.InnerRegistrations != b.InnerRegistrations || a.JobRequeues != b.JobRequeues {
		t.Fatalf("recovery counters diverge: registrations %d/%d requeues %d/%d",
			a.InnerRegistrations, b.InnerRegistrations, a.JobRequeues, b.JobRequeues)
	}
}
