package chaos

import (
	"testing"
	"time"
)

// TestChaosTransferOutage cuts the WAN in the middle of a parallel-stream
// gridftp download and checks the recovery chain end to end: the stall
// watchdog tears the dead attempt down, the restart-marker ledger resumes
// after the link returns, and the delivered file is byte-identical. The
// whole run — outage, aborts, resume — is deterministic, so two identical
// configs must produce identical trace hashes.
func TestChaosTransferOutage(t *testing.T) {
	cfg := TransferOutageConfig{
		FileSize:    2 << 20,
		Streams:     4,
		OutageStart: 300 * time.Millisecond,
		OutageEnd:   1300 * time.Millisecond,
	}
	rep, err := RunTransferOutage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err != nil {
		t.Fatalf("transfer failed: %v", rep.Err)
	}
	if !rep.Completed || !rep.BytesMatch {
		t.Fatalf("completed=%v bytesMatch=%v", rep.Completed, rep.BytesMatch)
	}
	if rep.Resumes < 1 {
		t.Fatalf("outage did not force a resume (resumes=%d)", rep.Resumes)
	}
	if rep.StallAborts < 1 {
		t.Fatalf("watchdog never fired (stallAborts=%d)", rep.StallAborts)
	}
	// The transfer rode out the outage: it cannot have finished before the
	// link came back.
	if rep.Elapsed < cfg.OutageEnd-cfg.OutageStart {
		t.Fatalf("elapsed %v shorter than the outage", rep.Elapsed)
	}

	again, err := RunTransferOutage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.TraceHash != rep.TraceHash {
		t.Fatalf("trace hash differs across identical runs: %#x vs %#x",
			rep.TraceHash, again.TraceHash)
	}
	if again.Resumes != rep.Resumes || again.Elapsed != rep.Elapsed {
		t.Fatalf("runs diverge: %+v vs %+v", rep, again)
	}
}

// TestChaosTransferFaultFree is the control: no fault plan disturbance
// beyond an outage window scheduled after the transfer already finished, so
// the download must complete in one attempt.
func TestChaosTransferFaultFree(t *testing.T) {
	rep, err := RunTransferOutage(TransferOutageConfig{
		FileSize:    256 << 10,
		OutageStart: 20 * time.Second,
		OutageEnd:   21 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err != nil || !rep.Completed || !rep.BytesMatch {
		t.Fatalf("baseline failed: %+v", rep)
	}
	if rep.Resumes != 0 || rep.StallAborts != 0 {
		t.Fatalf("baseline saw recovery activity: %+v", rep)
	}
}
