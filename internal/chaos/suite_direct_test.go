package chaos

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"nxcluster/internal/cluster"
	"nxcluster/internal/hbm"
)

// tinyConfig is a small fault-free run for exercising RunScenario's
// bookkeeping without the full suite's 90s horizons.
func tinyConfig() Config {
	return Config{
		Items:    8,
		Capacity: 2,
		System:   cluster.SystemCompas,
		Horizon:  30 * time.Second,
	}
}

// TestRunScenarioFailurePath: a scenario with an impossible invariant must
// come back Passed=false with the violation recorded — not as a harness
// error.
func TestRunScenarioFailurePath(t *testing.T) {
	res, err := RunScenario(Scenario{
		Name:       "impossible-ceiling",
		Config:     tinyConfig(),
		Invariants: []Invariant{ExactOptimum(), ElapsedCeiling(time.Nanosecond)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatal("scenario with a 1ns elapsed ceiling passed")
	}
	// determinism + 2 declared invariants
	if res.Invariants != 3 {
		t.Errorf("invariants = %d, want 3", res.Invariants)
	}
	if len(res.Failures) != 1 || !strings.Contains(res.Failures[0], "elapsed-ceiling") {
		t.Errorf("failures = %v, want one elapsed-ceiling violation", res.Failures)
	}
	if res.Report == nil || res.TraceHash == "" {
		t.Error("failing scenario must still carry its report and trace hash")
	}
}

// TestRunScenarioBadConfig: a config the runner rejects is a harness error,
// not a failed result.
func TestRunScenarioBadConfig(t *testing.T) {
	_, err := RunScenario(Scenario{Name: "no-items", Config: Config{Horizon: time.Second}})
	if err == nil {
		t.Fatal("RunScenario accepted a zero-item config")
	}
	if !strings.Contains(err.Error(), "no-items") {
		t.Errorf("error %q does not name the scenario", err)
	}
}

// TestRunSuiteLogsAndCounts drives RunSuite's logging path and the
// SuiteResult accessors on a mixed pass/fail suite.
func TestRunSuiteLogsAndCounts(t *testing.T) {
	var lines []string
	logf := func(format string, args ...interface{}) {
		lines = append(lines, strings.Join(strings.Fields(fmt.Sprintf(format, args...)), " "))
	}
	suite := []Scenario{
		{Name: "ok", Config: tinyConfig(), Invariants: []Invariant{ExactOptimum()}},
		{Name: "doomed", Config: tinyConfig(), Invariants: []Invariant{ElapsedCeiling(time.Nanosecond)}},
	}
	res, err := RunSuite(suite, logf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Error("suite with a doomed scenario passed")
	}
	sc, inv, fails := res.Counts()
	if sc != 2 || inv != 4 || fails != 1 {
		t.Errorf("counts = %d/%d/%d, want 2 scenarios, 4 invariants, 1 failure", sc, inv, fails)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "ok PASS") || !strings.Contains(joined, "doomed FAIL") {
		t.Errorf("log lines missing PASS/FAIL markers:\n%s", joined)
	}
	if !strings.Contains(joined, "FAIL elapsed-ceiling") {
		t.Errorf("log lines missing the failure detail:\n%s", joined)
	}
}

// TestInvariantLibrary exercises every invariant's violation branch on
// synthetic reports — the error text is part of the suite's UX.
func TestInvariantLibrary(t *testing.T) {
	cases := []struct {
		inv     Invariant
		rep     Report
		wantErr string
	}{
		{ExactOptimum(), Report{Completed: false}, "did not complete"},
		{ExactOptimum(), Report{Completed: true, Best: 9, WantBest: 10}, "best = 9, want 10"},
		{AllWorkDone(), Report{TotalTraversed: 5, WantNodes: 10}, "work was lost"},
		{NoOrphans(), Report{Orphans: 2}, "2 orphaned slaves"},
		{NoRankErrors(), Report{RankErrs: []error{nil, errors.New("boom")}}, "rank 1: boom"},
		{Registrations(2, 0), Report{InnerRegistrations: 1}, "registrations = 1"},
		{Registrations(1, 1), Report{InnerRegistrations: 3}, "registrations = 3"},
		{SuspectPeriods(1), Report{}, "suspect periods = 0"},
		{JobCompleted(), Report{JobErr: errors.New("lost")}, "job error: lost"},
		{JobCompleted(), Report{}, "job never ran"},
		{JobOffHost("compas00"), Report{JobResource: "compas00"}, "job finished on compas00"},
		{MinRequeues(1), Report{}, "requeues = 0, want >= 1"},
		{MaxRequeues(0), Report{JobRequeues: 2}, "requeues = 2, want <= 0"},
		{MinSpeculations(1), Report{}, "speculations = 0"},
		{ElapsedCeiling(time.Second), Report{Elapsed: 2 * time.Second}, "elapsed 2s > ceiling 1s"},
		{HBMAllUp(), Report{HBM: map[string]hbm.Health{"x": hbm.Down}}, "want Up"},
		{HBMSuspectsSeen(1), Report{}, "suspect transitions = 0"},
		{HBMNoDowns(), Report{HBMDowns: 3}, "down transitions = 3"},
		{ExtraJobsDone(5), Report{ExtraJobsDone: 4}, "extra jobs done = 4, want >= 5"},
	}
	for _, tc := range cases {
		t.Run(tc.inv.Name, func(t *testing.T) {
			err := tc.inv.Check(&tc.rep)
			if err == nil {
				t.Fatalf("%s passed on a violating report", tc.inv.Name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("%s error %q does not contain %q", tc.inv.Name, err, tc.wantErr)
			}
		})
	}
	// And the satisfied branches return nil.
	healthy := Report{
		Completed: true, Best: 10, WantBest: 10, TotalTraversed: 20, WantNodes: 20,
		InnerRegistrations: 1, JobResource: "compas01", JobDone: time.Second,
		HBM: map[string]hbm.Health{"x": hbm.Up},
	}
	for _, inv := range []Invariant{
		ExactOptimum(), AllWorkDone(), NoOrphans(), NoRankErrors(),
		Registrations(1, 1), JobCompleted(), JobOffHost("compas00"),
		MaxRequeues(0), ElapsedCeiling(time.Minute), HBMAllUp(), HBMNoDowns(),
		ExtraJobsDone(0),
	} {
		if err := inv.Check(&healthy); err != nil {
			t.Errorf("%s failed on a healthy report: %v", inv.Name, err)
		}
	}
}
