// Package chaos runs the paper's Table 4 knapsack workload on the Figure 5
// wide-area testbed while a seeded fault plan crashes hosts and flaps links,
// then reports whether every recovery layer did its job: the inner relay
// re-registering with the outer server after a boundary flap, HBM marking
// the crashed Q server DOWN and UP again after its restart, RMF requeuing
// the lost job onto a surviving resource, and the fault-tolerant knapsack
// scheduler reclaiming the dead rank's work.
//
// Everything runs under the deterministic simulation kernel, so a chaos run
// is reproducible bit for bit: the same Config yields the same Report,
// faults included. The branch-and-bound optimum is the invariant the whole
// exercise hangs on — faults may slow the search down, but they must never
// change its answer.
package chaos

import (
	"errors"
	"fmt"
	"time"

	"nxcluster/internal/cluster"
	"nxcluster/internal/hbm"
	"nxcluster/internal/knapsack"
	"nxcluster/internal/mpi"
	"nxcluster/internal/obs/timeseries"
	"nxcluster/internal/proxy"
	"nxcluster/internal/rmf"
	"nxcluster/internal/simnet"
	"nxcluster/internal/transport"
)

// HBMPort is where the heartbeat monitor listens on rwcp-inner.
const HBMPort = 7300

// Config describes one chaos run.
type Config struct {
	// Items and Capacity select the normalized knapsack instance
	// (the paper's Table 4 workload uses capacity 3).
	Items    int
	Capacity int
	// System picks the Table 3 configuration; UseProxy routes RWCP ranks
	// through the Nexus Proxy.
	System   cluster.System
	UseProxy bool
	// FT are the fault-tolerant scheduler's knobs (including Params).
	FT knapsack.FTParams
	// Plan is the fault schedule (nil for a fault-free baseline).
	Plan *simnet.FaultPlan
	// Horizon is how long the kernel runs. Control-plane daemons beat
	// forever, so the run always ends at the horizon; size it well past
	// the expected completion time.
	Horizon time.Duration
	// Keepalive tunes the inner server's registration channel.
	Keepalive proxy.KeepaliveConfig
	// ControlPlane additionally runs the HBM monitor, the RMF allocator
	// with an HBM watcher, a Q server plus heartbeat reporter on every
	// COMPaS node (rebooted by host restarts), and one RMF job with
	// recovery enabled.
	ControlPlane bool
	// JobRuntime is how long the RMF job's process runs (default 3s) —
	// long enough that a crash window can catch it mid-execution.
	JobRuntime time.Duration
	// JobCompute switches the RMF job from sleeping (wall-clock work,
	// unaffected by host speed) to computing (CPU work): on a host slowed by
	// FaultPlan.SlowHost the job stretches by the slow factor, which is what
	// makes speculative re-execution worth demonstrating.
	JobCompute bool
	// ExtraJobs submits that many additional RMF jobs in a staggered burst
	// shortly after the primary — a flash crowd against the site's 8
	// capacity-1 Q servers. The allocator queues the overflow and drains it
	// in waves; Report.ExtraJobsDone counts clean completions.
	ExtraJobs int
	// Recovery overrides the RMF job's recovery policy (nil = the default
	// {StatusRetries: 3}). Set SpeculateAfter here to enable straggler
	// speculation.
	Recovery *rmf.RecoveryPolicy
	// SuspectWindow, when nonzero, enables the HBM monitor's gray-failure
	// SUSPECT classification (see hbm.Monitor.SuspectWindow).
	SuspectWindow time.Duration
	// BeatCost charges each heartbeat reporter that much compute per beat,
	// so a slowed host's beats arrive with stretched gaps — the degradation
	// signal SUSPECT classification keys on.
	BeatCost time.Duration
	// HBMLateAfter/HBMDownAfter override the monitor's overdue thresholds
	// (zero = derived from the beat interval). Scenarios that stretch beat
	// gaps with BeatCost raise these so healthy hosts stay cleanly UP.
	HBMLateAfter time.Duration
	HBMDownAfter time.Duration
	// SampleInterval, when nonzero (and Options.Obs is set), attaches a
	// kernel-scheduled time-series sampler with that window width; the
	// windowed series land in Report.Store. Sampling only reads metrics, so
	// it never changes the run's virtual-time results. The scenario DSL's
	// slo: block switches this on to judge throughput floors and error
	// budgets.
	SampleInterval time.Duration
	// Options forwards testbed construction options.
	Options cluster.Options
}

// Report is the outcome of a chaos run.
type Report struct {
	// WantBest and WantNodes are the sequential optimum and the full
	// normalized tree size — the ground truth the run is checked against.
	WantBest  int64
	WantNodes int64
	// Completed reports whether the knapsack master terminated before the
	// horizon; Best, Elapsed, TotalTraversed are its result.
	Completed      bool
	Best           int64
	Elapsed        time.Duration
	TotalTraversed int64
	// RankErrs holds per-rank outcomes (nil for ranks killed mid-run);
	// Orphans counts slaves that gave up with ErrOrphaned.
	RankErrs []error
	Orphans  int
	// InnerRegistrations counts registration sessions the inner relay
	// established (1 fault-free; +1 per recovery). OuterBoots counts outer
	// server boots (1 + restarts).
	InnerRegistrations int
	OuterBoots         int
	// OuterStats snapshots the outer relay's counters at the horizon.
	OuterStats proxy.Stats
	// HBM is the monitor's view of every registered process at the
	// horizon (control plane only).
	HBM map[string]hbm.Health
	// JobErr, JobRequeues, JobResource describe the RMF job: its Wait
	// outcome, how many times it was requeued, and where it finally ran.
	JobErr      error
	JobRequeues int
	JobResource string
	// JobDone is the virtual time the job's Wait returned (0 if it never
	// did); JobSpeculations counts speculative duplicates launched.
	JobDone         time.Duration
	JobSpeculations int
	// ExtraJobsDone counts flash-crowd jobs (Config.ExtraJobs) whose Wait
	// returned cleanly before the horizon.
	ExtraJobsDone int
	// InnerStats snapshots the inner relay's counters at the horizon
	// (SuspectPeriods is the degraded-boundary evidence).
	InnerStats proxy.Stats
	// HBMSuspects/HBMDowns count the monitor's transitions into SUSPECT and
	// DOWN (control plane only): a straggler under a SuspectWindow should
	// show suspects without DOWN/UP churn.
	HBMSuspects int64
	HBMDowns    int64
	// Store holds the windowed time-series when Config.SampleInterval asked
	// for sampling (nil otherwise).
	Store *timeseries.Store
}

// Run executes one chaos scenario and returns its report.
func Run(cfg Config) (*Report, error) {
	if cfg.Items <= 0 || cfg.Capacity <= 0 {
		return nil, fmt.Errorf("chaos: instance size %d/%d", cfg.Items, cfg.Capacity)
	}
	if cfg.Horizon <= 0 {
		return nil, errors.New("chaos: horizon required")
	}
	rep := &Report{}
	in := knapsack.Normalized(cfg.Items, cfg.Capacity)
	rep.WantBest, _ = knapsack.Solve(in)
	rep.WantNodes = knapsack.NormalizedTreeNodes(cfg.Items, cfg.Capacity)

	tb, err := cluster.NewTestbedChecked(cfg.Options)
	if err != nil {
		return nil, err
	}
	if err := tb.EnableRecoveryChecked(cfg.Keepalive); err != nil {
		return nil, err
	}
	var mon *hbm.Monitor
	if cfg.ControlPlane {
		mon = startControlPlane(tb, cfg, rep)
	}
	if cfg.SampleInterval > 0 && cfg.Options.Obs != nil {
		// KeepAlive: chaos kernels run to a horizon with daemons beating
		// forever, so the sampler must not stop itself when live work dips.
		smp := timeseries.NewSampler(tb.K, cfg.SampleInterval, cfg.Options.Obs.Metrics())
		smp.KeepAlive = true
		smp.Start()
		rep.Store = smp.Store()
	}

	var res *knapsack.Result
	w := mpi.NewWorld(tb.Placements(cfg.System, cfg.UseProxy))
	w.Launch(func(c *mpi.Comm) error {
		r, err := knapsack.RunFT(c, in, cfg.FT)
		if c.Rank() == 0 && r != nil {
			res = r
		}
		return err
	})

	if cfg.Plan != nil {
		if err := tb.Net.ApplyPlan(cfg.Plan); err != nil {
			return nil, err
		}
	}
	tb.K.RunUntil(cfg.Horizon)

	if res != nil {
		rep.Completed = true
		rep.Best = res.Best
		rep.Elapsed = res.Elapsed
		rep.TotalTraversed = res.TotalTraversed
	}
	rep.RankErrs = w.RankErrs()
	for _, e := range rep.RankErrs {
		if errors.Is(e, knapsack.ErrOrphaned) {
			rep.Orphans++
		}
	}
	rep.InnerStats = tb.Inner.Stats()
	rep.InnerRegistrations = rep.InnerStats.Registrations
	rep.OuterBoots = tb.OuterBoots
	rep.OuterStats = tb.Outer.Stats()
	if mon != nil {
		rep.HBM = mon.Snapshot(cfg.Horizon)
		rep.HBMSuspects = mon.SuspectCount()
		rep.HBMDowns = mon.DownCount()
	}
	tb.K.Shutdown()
	return rep, nil
}

// startControlPlane stands up the monitoring and job-management stack: HBM
// monitor on rwcp-inner, allocator (with HBM watcher) on rwcp-sun, a Q
// server and heartbeat reporter on every COMPaS node — with OnRestart boot
// scripts so a host restart brings them back — and one recoverable RMF job
// submitted from rwcp-sun. All of it stays inside the firewall, matching
// the paper's deployment of RMF at the protected site.
func startControlPlane(tb *cluster.Testbed, cfg Config, rep *Report) *hbm.Monitor {
	const beat = 250 * time.Millisecond
	monAddr := transport.JoinAddr(cluster.RWCPInner, HBMPort)
	allocAddr := transport.JoinAddr(cluster.RWCPSun, rmf.AllocatorPort)

	mon := hbm.NewMonitor(beat)
	mon.SuspectWindow = cfg.SuspectWindow
	mon.LateAfter = cfg.HBMLateAfter
	mon.DownAfter = cfg.HBMDownAfter
	tb.Host(cluster.RWCPInner).SpawnDaemonOn("hbm-monitor", func(env transport.Env) {
		_ = mon.Serve(env, HBMPort, nil)
	})
	// The inner relay daemon reports its own liveness too.
	tb.Host(cluster.RWCPInner).SpawnDaemonOn("hbm-rep-nxproxy", func(env transport.Env) {
		env.Sleep(2 * time.Millisecond)
		r := &hbm.Reporter{MonitorAddr: monAddr, Name: "nxproxy-inner", Interval: beat, BeatCost: cfg.BeatCost}
		r.Start(env)
	})

	alloc := rmf.NewAllocator()
	tb.Host(cluster.RWCPSun).SpawnDaemonOn("rmf-alloc", func(env transport.Env) {
		alloc.WatchHBM(env, monAddr, beat)
		_ = alloc.Serve(env, rmf.AllocatorPort, nil)
	})

	reg := rmf.NewRegistry()
	spin := cfg.JobRuntime
	if spin <= 0 {
		spin = 3 * time.Second
	}
	reg.Register("chaos-spin", func(env transport.Env, ctx *rmf.JobContext) error {
		env.Sleep(spin)
		fmt.Fprintf(&ctx.Stdout, "spun %v on %s\n", spin, ctx.Resource)
		return nil
	})
	// chaos-burn does the same nominal amount of work as CPU time, so a
	// SlowHost straggler stretches it by the slow factor.
	reg.Register("chaos-burn", func(env transport.Env, ctx *rmf.JobContext) error {
		env.Compute(spin)
		fmt.Fprintf(&ctx.Stdout, "burned %v on %s\n", spin, ctx.Resource)
		return nil
	})
	for i := 0; i < cluster.CompasNodes; i++ {
		name := cluster.CompasNode(i)
		boot := func(env transport.Env) {
			env.Sleep(2 * time.Millisecond) // let monitor and allocator bind
			r := &hbm.Reporter{MonitorAddr: monAddr, Name: name, Interval: beat, BeatCost: cfg.BeatCost}
			r.Start(env)
			q := rmf.NewQServer(name, "compas", 1, reg)
			_ = q.Serve(env, rmf.QServerPort, allocAddr, nil)
		}
		tb.Host(name).SpawnDaemonOn("qserver-"+name, boot)
		tb.Host(name).OnRestart("qserver-"+name, boot)
	}

	exe := "chaos-spin"
	if cfg.JobCompute {
		exe = "chaos-burn"
	}
	tb.Host(cluster.RWCPSun).SpawnOn("chaos-qclient", func(env transport.Env) {
		env.Sleep(500 * time.Millisecond)
		h, err := rmf.SubmitJob(env, allocAddr, rmf.JobRequest{
			Count:   1,
			Cluster: "compas",
			Spec:    rmf.ProcessSpec{Executable: exe},
		})
		if err != nil {
			rep.JobErr = err
			return
		}
		pol := rmf.RecoveryPolicy{StatusRetries: 3}
		if cfg.Recovery != nil {
			pol = *cfg.Recovery
		}
		h.Recovery = &pol
		rep.JobErr = h.Wait(env, 100*time.Millisecond, 30*time.Second)
		rep.JobDone = env.Now()
		rep.JobRequeues = h.Requeues
		rep.JobSpeculations = h.Speculations
		if len(h.Processes) > 0 {
			rep.JobResource = h.Processes[0].Resource
		}
	})

	// The flash crowd: ExtraJobs more submissions, staggered 50ms apart
	// starting just after the primary, so the allocator sees a burst that
	// overflows the site's slots and must drain it in waves. The stagger is
	// deterministic — every run replays the identical arrival pattern.
	for i := 0; i < cfg.ExtraJobs; i++ {
		delay := 600*time.Millisecond + time.Duration(i)*50*time.Millisecond
		tb.Host(cluster.RWCPSun).SpawnOn(fmt.Sprintf("chaos-extra-%d", i), func(env transport.Env) {
			env.Sleep(delay)
			// A burst bigger than the site's slot count sees ErrNoResources
			// until a wave drains; poll on a fixed deterministic cadence.
			var h *rmf.JobHandle
			var err error
			for attempt := 0; attempt < 240; attempt++ {
				h, err = rmf.SubmitJob(env, allocAddr, rmf.JobRequest{
					Count:   1,
					Cluster: "compas",
					Spec:    rmf.ProcessSpec{Executable: exe},
				})
				if err == nil {
					break
				}
				env.Sleep(250 * time.Millisecond)
			}
			if err != nil {
				return
			}
			pol := rmf.RecoveryPolicy{StatusRetries: 3}
			if cfg.Recovery != nil {
				pol = *cfg.Recovery
			}
			h.Recovery = &pol
			if h.Wait(env, 100*time.Millisecond, 60*time.Second) == nil {
				rep.ExtraJobsDone++
			}
		})
	}
	return mon
}
