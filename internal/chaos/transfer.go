package chaos

import (
	"bytes"
	"fmt"
	"time"

	"nxcluster/internal/cluster"
	"nxcluster/internal/gass"
	"nxcluster/internal/gridftp"
	"nxcluster/internal/obs"
	"nxcluster/internal/proxy"
	"nxcluster/internal/simnet"
	"nxcluster/internal/transport"
)

// TransferOutageConfig describes a bulk-transfer chaos run: a gridftp
// download through the firewall proxy over the congestion-modeled WAN, with
// a wide-area outage dropped into the middle of it.
type TransferOutageConfig struct {
	// FileSize is the bytes served from ETL-Sun (default 1 MiB).
	FileSize int
	// Streams is the client's parallel data-channel count (default 4).
	Streams int
	// OutageStart and OutageEnd bound the WAN outage window
	// (defaults 300 ms and 1.3 s).
	OutageStart, OutageEnd time.Duration
	// ProgressTimeout is the client's stall watchdog (default 250 ms):
	// longer than the proxied connection setup over the 50 ms-RTT WAN, but
	// well under the outage so the dead attempt is torn down instead of
	// waiting the outage out, proving the restart-marker path did the
	// recovery.
	ProgressTimeout time.Duration
	// Horizon bounds the kernel run (default 30 s).
	Horizon time.Duration
	// Seed seeds the flow model's loss stream (default 1). The scenario
	// runs lossless by default; the outage is the only disturbance.
	Seed uint64
}

func (c TransferOutageConfig) withDefaults() TransferOutageConfig {
	if c.FileSize <= 0 {
		c.FileSize = 1 << 20
	}
	if c.Streams <= 0 {
		c.Streams = 4
	}
	if c.OutageStart <= 0 {
		c.OutageStart = 300 * time.Millisecond
	}
	if c.OutageEnd <= c.OutageStart {
		c.OutageEnd = c.OutageStart + time.Second
	}
	if c.ProgressTimeout <= 0 {
		c.ProgressTimeout = 250 * time.Millisecond
	}
	if c.Horizon <= 0 {
		c.Horizon = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// TransferOutageReport is the outcome of one transfer chaos run.
type TransferOutageReport struct {
	// Completed reports whether the download finished before the horizon.
	Completed bool
	// BytesMatch reports whether the received file is byte-identical to the
	// served one — the invariant the restart-marker ledger must preserve
	// across the interruption.
	BytesMatch bool
	// Resumes counts restart-marker resumes the client performed (>= 1 when
	// the outage caught the transfer mid-flight).
	Resumes int
	// Elapsed is the transfer's virtual duration, outage included.
	Elapsed time.Duration
	// StallAborts counts watchdog-initiated connection teardowns observed in
	// the trace.
	StallAborts int
	// TraceHash fingerprints the full event trace; equal configs must yield
	// equal hashes.
	TraceHash uint64
	// Err is the client's final error, nil on success.
	Err error
}

// RunTransferOutage executes the scenario: serve a file from ETL-Sun, pull
// it from RWCP-Sun through the Nexus Proxy with parallel streams, cut the
// WAN mid-transfer, and verify the transfer resumes from its restart markers
// and delivers a byte-identical file.
func RunTransferOutage(cfg TransferOutageConfig) (*TransferOutageReport, error) {
	cfg = cfg.withDefaults()
	o := obs.New()
	tb := cluster.NewTestbed(cluster.Options{
		RelayPerBuffer: 200 * time.Microsecond,
		WANLatency:     25 * time.Millisecond,
		WANBandwidth:   8_000_000,
		FlowModel:      &simnet.FlowConfig{Seed: cfg.Seed},
		Obs:            o,
	})
	defer tb.K.Shutdown()

	store := gass.NewStore()
	data := make([]byte, cfg.FileSize)
	for i := range data {
		data[i] = byte(i*11 + i>>9)
	}
	if err := store.Put("/bulk/chaos.bin", data); err != nil {
		return nil, err
	}
	srv := gridftp.NewServer(store, proxy.Dialer{})
	addr := make(chan string, 1)
	tb.Host(cluster.ETLSun).SpawnDaemonOn("gridftp-server", func(env transport.Env) {
		_ = srv.Serve(env, 7040, func(a string) { addr <- a })
	})

	rep := &TransferOutageReport{}
	tb.Host(cluster.RWCPSun).SpawnOn("gridftp-client", func(env transport.Env) {
		for len(addr) == 0 {
			env.Sleep(time.Millisecond)
		}
		url := gridftp.URL(<-addr, "/bulk/chaos.bin")
		cl := &gridftp.Client{
			Dialer:          tb.Dialer(),
			Streams:         cfg.Streams,
			ProgressTimeout: cfg.ProgressTimeout,
			Retries:         8,
		}
		got, stats, err := cl.Get(env, url)
		rep.Err = err
		if err != nil {
			return
		}
		rep.Completed = true
		rep.BytesMatch = bytes.Equal(got, data)
		rep.Resumes = stats.Resumes
		rep.Elapsed = stats.Elapsed
	})

	plan := (&simnet.FaultPlan{}).LinkOutage(cluster.RWCPOuter, "etl-gw", cfg.OutageStart, cfg.OutageEnd)
	if err := tb.Net.ApplyPlan(plan); err != nil {
		return nil, err
	}
	tb.K.RunUntil(cfg.Horizon)

	for _, e := range o.Events() {
		if e.Cat == "gridftp" && e.Name == "stall-abort" {
			rep.StallAborts++
		}
	}
	rep.TraceHash = o.Hash()
	if rep.Err == nil && !rep.Completed {
		rep.Err = fmt.Errorf("chaos: transfer did not finish before the %v horizon", cfg.Horizon)
	}
	return rep, nil
}
