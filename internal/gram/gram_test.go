package gram

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nxcluster/internal/auth"
	"nxcluster/internal/firewall"
	"nxcluster/internal/rmf"
	"nxcluster/internal/rsl"
	"nxcluster/internal/sim"
	"nxcluster/internal/simnet"
	"nxcluster/internal/transport"
)

// startGatekeeperTCP boots a fork-only gatekeeper on loopback TCP.
func startGatekeeperTCP(t *testing.T, reg *rmf.Registry) (*transport.TCPEnv, auth.Credential, string, *Gatekeeper) {
	t.Helper()
	env := transport.NewTCPEnv("localhost")
	cred, err := auth.NewCredential("/O=Grid/CN=tester")
	if err != nil {
		t.Fatal(err)
	}
	kr := auth.NewKeyring()
	kr.Grant(cred, "tester")
	gk := NewGatekeeper(Config{Keyring: kr, Registry: reg})
	ready := make(chan string, 1)
	env.Spawn("gk", func(e transport.Env) {
		_ = gk.Serve(e, 0, func(a string) { ready <- a })
	})
	addr := <-ready
	t.Cleanup(func() { gk.Close(env) })
	return env, cred, addr, gk
}

func TestSubmitForkJobTCP(t *testing.T) {
	reg := rmf.NewRegistry()
	var gotArgs []string
	reg.Register("hello", func(e transport.Env, ctx *rmf.JobContext) error {
		gotArgs = ctx.Args
		return nil
	})
	env, cred, addr, _ := startGatekeeperTCP(t, reg)
	contact, err := Submit(env, addr, cred, `&(executable=hello)(arguments=x "y z")`)
	if err != nil {
		t.Fatal(err)
	}
	if contact == "" {
		t.Fatal("empty contact")
	}
	if err := Wait(env, addr, cred, contact, 10*time.Millisecond, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if len(gotArgs) != 2 || gotArgs[1] != "y z" {
		t.Fatalf("args = %v", gotArgs)
	}
}

func TestSubmitDeniedWithoutCredential(t *testing.T) {
	reg := rmf.NewRegistry()
	env, _, addr, _ := startGatekeeperTCP(t, reg)
	bad, _ := auth.NewCredential("/CN=stranger")
	if _, err := Submit(env, addr, bad, `&(executable=hello)`); err == nil {
		t.Fatal("unauthenticated submit succeeded")
	}
}

func TestSubmitBadRSL(t *testing.T) {
	env, cred, addr, _ := startGatekeeperTCP(t, rmf.NewRegistry())
	for _, bad := range []string{"notrsl", "&(count=2)", `&(executable=a)(count=-1)`, `&(executable=a)(jobmanager=weird)`} {
		if _, err := Submit(env, addr, cred, bad); err == nil {
			t.Errorf("Submit(%q) succeeded", bad)
		}
	}
}

func TestForkJobFailurePropagates(t *testing.T) {
	reg := rmf.NewRegistry()
	reg.Register("bad", func(e transport.Env, ctx *rmf.JobContext) error {
		return fmt.Errorf("exit 1")
	})
	env, cred, addr, _ := startGatekeeperTCP(t, reg)
	contact, err := Submit(env, addr, cred, `&(executable=bad)`)
	if err != nil {
		t.Fatal(err)
	}
	err = Wait(env, addr, cred, contact, 10*time.Millisecond, 5*time.Second)
	if err == nil || !strings.Contains(err.Error(), "exit 1") {
		t.Fatalf("Wait = %v", err)
	}
}

func TestStatusUnknownContact(t *testing.T) {
	env, cred, addr, _ := startGatekeeperTCP(t, rmf.NewRegistry())
	if _, _, err := Status(env, addr, cred, "job-999"); err == nil {
		t.Fatal("unknown contact accepted")
	}
}

// TestFigure2FlowInSim runs the paper's Figure 2 end to end in the
// simulator: gatekeeper outside the firewall, allocator and Q servers
// inside, GASS staging, and the six-step submission flow traced.
func TestFigure2FlowInSim(t *testing.T) {
	k := sim.New()
	n := simnet.New(k)
	n.AddHost("client", simnet.HostConfig{})
	n.AddHost("rwcp-outer", simnet.HostConfig{})
	n.AddHost("rwcp-alloc", simnet.HostConfig{Site: "rwcp"})
	n.AddHost("compas00", simnet.HostConfig{Site: "rwcp"})
	n.AddHost("compas01", simnet.HostConfig{Site: "rwcp"})
	lan := simnet.LinkConfig{Latency: 200 * time.Microsecond, Bandwidth: 12 << 20}
	n.Connect("client", "rwcp-outer", simnet.LinkConfig{Latency: 2 * time.Millisecond, Bandwidth: 1 << 20})
	n.Connect("rwcp-outer", "rwcp-alloc", lan)
	n.Connect("rwcp-alloc", "compas00", lan)
	n.Connect("rwcp-alloc", "compas01", lan)
	fw := firewall.New("rwcp")
	fw.AllowIncomingPort(rmf.AllocatorPort, "RMF allocator")
	fw.AllowIncomingPort(rmf.QServerPort, "RMF Q servers")
	n.SetFirewall("rwcp", fw)

	var traceLines []string
	tracef := func(format string, args ...interface{}) {
		traceLines = append(traceLines, fmt.Sprintf(format, args...))
	}

	reg := rmf.NewRegistry()
	ranOn := map[string]bool{}
	reg.Register("knapsack-worker", func(e transport.Env, ctx *rmf.JobContext) error {
		ranOn[ctx.Resource] = true
		fmt.Fprintf(&ctx.Stdout, "worker on %s", ctx.Resource)
		return nil
	})

	alloc := rmf.NewAllocator()
	alloc.SetTrace(tracef)
	n.Node("rwcp-alloc").SpawnDaemonOn("alloc", func(e transport.Env) {
		_ = alloc.Serve(e, rmf.AllocatorPort, nil)
	})
	for _, host := range []string{"compas00", "compas01"} {
		q := rmf.NewQServer(host, "compas", 4, reg)
		q.SetTrace(tracef)
		h := host
		n.Node(h).SpawnDaemonOn("qserver-"+h, func(e transport.Env) {
			e.Sleep(time.Millisecond)
			_ = q.Serve(e, rmf.QServerPort, "rwcp-alloc:7100", nil)
		})
	}

	cred, err := auth.NewCredential("/O=Grid/OU=RWCP/CN=yoshio")
	if err != nil {
		t.Fatal(err)
	}
	kr := auth.NewKeyring()
	kr.Grant(cred, "yoshio")
	gk := NewGatekeeper(Config{
		Keyring:       kr,
		Registry:      reg,
		AllocatorAddr: "rwcp-alloc:7100",
	})
	gk.SetTrace(tracef)
	n.Node("rwcp-outer").SpawnDaemonOn("gatekeeper", func(e transport.Env) {
		_ = gk.Serve(e, DefaultPort, nil)
	})

	var submitErr error
	n.Node("client").SpawnOn("globusrun", func(e transport.Env) {
		e.Sleep(5 * time.Millisecond)
		contact, err := Submit(e, "rwcp-outer:2119", cred,
			`&(executable=knapsack-worker)(count=2)(jobmanager=rmf)(cluster=compas)`)
		if err != nil {
			submitErr = err
			return
		}
		submitErr = Wait(e, "rwcp-outer:2119", cred, contact, 10*time.Millisecond, 30*time.Second)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if submitErr != nil {
		t.Fatal(submitErr)
	}
	if !ranOn["compas00"] || !ranOn["compas01"] {
		t.Fatalf("processes not spread across resources: %v", ranOn)
	}
	// The Figure 2 steps appear in the trace.
	joined := strings.Join(traceLines, "\n")
	for _, want := range []string{"authenticated", "job request", "creating Q client", "selected", "accepted", "done"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q:\n%s", want, joined)
		}
	}
}

// TestDUROCMultirequest co-allocates one job across two gatekeepers.
func TestDUROCMultirequest(t *testing.T) {
	regA := rmf.NewRegistry()
	regB := rmf.NewRegistry()
	var ranA, ranB atomic.Int64
	regA.Register("part", func(e transport.Env, ctx *rmf.JobContext) error { ranA.Add(1); return nil })
	regB.Register("part", func(e transport.Env, ctx *rmf.JobContext) error { ranB.Add(1); return nil })

	envA, credA, addrA, _ := startGatekeeperTCP(t, regA)
	// Second gatekeeper shares the credential/keyring world via its own env.
	kr := auth.NewKeyring()
	kr.Grant(credA, "tester")
	gkB := NewGatekeeper(Config{Keyring: kr, Registry: regB})
	readyB := make(chan string, 1)
	envA.Spawn("gkB", func(e transport.Env) {
		_ = gkB.Serve(e, 0, func(a string) { readyB <- a })
	})
	addrB := <-readyB
	defer gkB.Close(envA)

	spec, err := rsl.Parse(fmt.Sprintf(
		`+(&(resourceManagerContact=rwcp)(executable=part)(count=2))(&(resourceManagerContact=etl)(executable=part)(count=3))`))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := SubmitMulti(envA, credA, spec, map[string]string{"rwcp": addrA, "etl": addrB})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("%d subjobs", len(jobs))
	}
	if err := WaitMulti(envA, credA, jobs, 10*time.Millisecond, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if ranA.Load() != 2 || ranB.Load() != 3 {
		t.Fatalf("ranA=%d ranB=%d, want 2,3", ranA.Load(), ranB.Load())
	}
}

func TestSubmitMultiErrors(t *testing.T) {
	env, cred, addr, _ := startGatekeeperTCP(t, rmf.NewRegistry())
	single, _ := rsl.Parse(`&(executable=a)`)
	if _, err := SubmitMulti(env, cred, single, nil); err == nil {
		t.Fatal("single spec accepted by SubmitMulti")
	}
	multi, _ := rsl.Parse(`+(&(executable=a))`)
	if _, err := SubmitMulti(env, cred, multi, map[string]string{"x": addr}); err == nil {
		t.Fatal("missing resourceManagerContact accepted")
	}
	multi2, _ := rsl.Parse(`+(&(resourceManagerContact=unknown)(executable=a))`)
	if _, err := SubmitMulti(env, cred, multi2, map[string]string{"x": addr}); err == nil {
		t.Fatal("unknown contact accepted")
	}
}

func TestCancelAndList(t *testing.T) {
	reg := rmf.NewRegistry()
	block := make(chan struct{})
	reg.Register("slow", func(e transport.Env, ctx *rmf.JobContext) error {
		<-block
		return nil
	})
	env, cred, addr, gk := startGatekeeperTCP(t, reg)
	defer close(block)

	contact, err := Submit(env, addr, cred, `&(executable=slow)`)
	if err != nil {
		t.Fatal(err)
	}
	// The subject sees its own jobs.
	jobs, err := List(env, addr, cred)
	if err != nil || len(jobs) != 1 || jobs[0] != contact {
		t.Fatalf("List = %v, %v", jobs, err)
	}
	// Another authenticated subject sees no jobs and cannot cancel this one.
	other, _ := auth.NewCredential("/CN=other")
	gk.cfg.Keyring.Grant(other, "other")
	if jobs, err := List(env, addr, other); err != nil || len(jobs) != 0 {
		t.Fatalf("foreign List = %v, %v", jobs, err)
	}
	if err := Cancel(env, addr, other, contact); err == nil ||
		!strings.Contains(err.Error(), "another subject") {
		t.Fatalf("foreign cancel = %v, want ownership error", err)
	}
	if err := Cancel(env, addr, cred, contact); err != nil {
		t.Fatal(err)
	}
	// Canceled jobs report failure with the cancellation message.
	err = Wait(env, addr, cred, contact, 10*time.Millisecond, 5*time.Second)
	if err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("Wait after cancel = %v", err)
	}
	// Double cancel is rejected.
	if err := Cancel(env, addr, cred, contact); err == nil {
		t.Fatal("double cancel succeeded")
	}
	// Unknown contact.
	if err := Cancel(env, addr, cred, "job-999"); err == nil {
		t.Fatal("cancel of unknown contact succeeded")
	}
}
