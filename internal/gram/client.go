package gram

import (
	"fmt"
	"time"

	"nxcluster/internal/auth"
	"nxcluster/internal/nexus"
	"nxcluster/internal/rsl"
	"nxcluster/internal/transport"
)

// dialAuthed opens an authenticated gatekeeper connection.
func dialAuthed(env transport.Env, gkAddr string, cred auth.Credential) (transport.Conn, error) {
	c, err := env.Dial(gkAddr)
	if err != nil {
		return nil, fmt.Errorf("gram: dial gatekeeper %s: %w", gkAddr, err)
	}
	if err := auth.Initiate(env, c, cred); err != nil {
		_ = c.Close(env)
		return nil, err
	}
	return c, nil
}

func request(env transport.Env, gkAddr string, cred auth.Credential, req *nexus.Buffer) (*nexus.Buffer, error) {
	c, err := dialAuthed(env, gkAddr, cred)
	if err != nil {
		return nil, err
	}
	defer c.Close(env)
	st := transport.Stream{Env: env, Conn: c}
	if err := nexus.WriteFrame(st, req); err != nil {
		return nil, err
	}
	resp, err := nexus.ReadFrame(st, 0)
	if err != nil {
		return nil, err
	}
	ok, err := resp.GetBool()
	if err != nil {
		return nil, err
	}
	if !ok {
		msg, _ := resp.GetString()
		return nil, fmt.Errorf("gram: %s: %s", gkAddr, msg)
	}
	return resp, nil
}

// Submit sends an RSL job request to a gatekeeper (like globusrun) and
// returns the job contact.
func Submit(env transport.Env, gkAddr string, cred auth.Credential, rslText string) (string, error) {
	req := nexus.NewBuffer()
	req.PutInt32(opSubmit)
	req.PutString(rslText)
	resp, err := request(env, gkAddr, cred, req)
	if err != nil {
		return "", err
	}
	return resp.GetString()
}

// Status queries a job's state.
func Status(env transport.Env, gkAddr string, cred auth.Credential, contact string) (state int32, msg string, err error) {
	req := nexus.NewBuffer()
	req.PutInt32(opStatus)
	req.PutString(contact)
	resp, err := request(env, gkAddr, cred, req)
	if err != nil {
		return 0, "", err
	}
	if state, err = resp.GetInt32(); err != nil {
		return 0, "", err
	}
	if msg, err = resp.GetString(); err != nil {
		return 0, "", err
	}
	return state, msg, nil
}

// stateDone/stateFailed mirror rmf.State without importing it here (the
// wire carries the integer).
const (
	stateDone   = int32(2)
	stateFailed = int32(3)
)

// Wait polls a job until it completes or timeout expires (0 = no limit).
func Wait(env transport.Env, gkAddr string, cred auth.Credential, contact string, poll, timeout time.Duration) error {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	deadline := env.Now() + timeout
	for {
		state, msg, err := Status(env, gkAddr, cred, contact)
		if err != nil {
			return err
		}
		switch state {
		case stateDone:
			return nil
		case stateFailed:
			return fmt.Errorf("gram: job %s failed: %s", contact, msg)
		}
		if timeout > 0 && env.Now() > deadline {
			return fmt.Errorf("gram: job %s timed out", contact)
		}
		env.Sleep(poll)
	}
}

// Cancel aborts a job; only the submitting subject's credential works.
func Cancel(env transport.Env, gkAddr string, cred auth.Credential, contact string) error {
	req := nexus.NewBuffer()
	req.PutInt32(opCancel)
	req.PutString(contact)
	_, err := request(env, gkAddr, cred, req)
	return err
}

// List returns the credential subject's job contacts at a gatekeeper.
func List(env transport.Env, gkAddr string, cred auth.Credential) ([]string, error) {
	req := nexus.NewBuffer()
	req.PutInt32(opList)
	resp, err := request(env, gkAddr, cred, req)
	if err != nil {
		return nil, err
	}
	n, err := resp.GetInt32()
	if err != nil {
		return nil, err
	}
	out := make([]string, n)
	for i := range out {
		if out[i], err = resp.GetString(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SubJob is one component of a co-allocated multirequest.
type SubJob struct {
	// Gatekeeper is the component's gatekeeper address.
	Gatekeeper string
	// Contact is the component's job contact.
	Contact string
}

// SubmitMulti performs DUROC-style co-allocation of an RSL multirequest:
// each subrequest names its resourceManagerContact, resolved through
// contacts to a gatekeeper address; all components are submitted before any
// is waited on, so they start together as MPICH-G requires.
func SubmitMulti(env transport.Env, cred auth.Credential, spec *rsl.Spec, contacts map[string]string) ([]SubJob, error) {
	if !spec.IsMulti() {
		return nil, fmt.Errorf("%w: SubmitMulti wants a + multirequest", ErrBadRequest)
	}
	var jobs []SubJob
	for i, sub := range spec.Multi {
		rm := sub.GetString("resourceManagerContact", "")
		if rm == "" {
			return nil, fmt.Errorf("%w: subrequest %d missing resourceManagerContact", ErrBadRequest, i)
		}
		gk, ok := contacts[rm]
		if !ok {
			return nil, fmt.Errorf("%w: no gatekeeper known for contact %q", ErrBadRequest, rm)
		}
		contact, err := Submit(env, gk, cred, sub.String())
		if err != nil {
			return jobs, fmt.Errorf("gram: subrequest %d (%s): %w", i, rm, err)
		}
		jobs = append(jobs, SubJob{Gatekeeper: gk, Contact: contact})
	}
	return jobs, nil
}

// WaitMulti waits for every component of a co-allocated job.
func WaitMulti(env transport.Env, cred auth.Credential, jobs []SubJob, poll, timeout time.Duration) error {
	var firstErr error
	for _, j := range jobs {
		if err := Wait(env, j.Gatekeeper, cred, j.Contact, poll, timeout); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
