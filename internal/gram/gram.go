// Package gram implements the Globus Resource Allocation Manager layer the
// paper's RMF plugs into: a gatekeeper daemon that authenticates job
// requests, parses their RSL, and forks a job manager to run them.
//
// Two job manager types exist, selected by the RSL jobmanager attribute:
//
//   - "fork" runs the processes directly on the gatekeeper's host, the
//     plain Globus behaviour;
//   - "rmf" is the paper's contribution hook: the job manager creates a Q
//     client which allocates resources inside the firewall via the RMF
//     resource allocator and submits the processes to their Q servers
//     (paper Figure 2: "when the RMF type GRAM is used, computing resources
//     inside the firewall can be utilized via a Globus gatekeeper which is
//     running outside the firewall").
//
// DUROC-style multirequests (+ specs) co-allocate one job across several
// gatekeepers; see SubmitMulti.
package gram

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"nxcluster/internal/auth"
	"nxcluster/internal/nexus"
	"nxcluster/internal/obs"
	"nxcluster/internal/rmf"
	"nxcluster/internal/rsl"
	"nxcluster/internal/transport"
)

// DefaultPort is the conventional gatekeeper port (Globus used 2119).
const DefaultPort = 2119

// Wire ops on an authenticated gatekeeper connection.
const (
	opSubmit = int32(1)
	opStatus = int32(2)
	opCancel = int32(3)
	opList   = int32(4)
)

// ErrBadRequest reports an unusable job request.
var ErrBadRequest = errors.New("gram: bad request")

// Config wires a gatekeeper's dependencies.
type Config struct {
	// Keyring authorizes submitting subjects.
	Keyring *auth.Keyring
	// Registry resolves executables for fork-type jobs.
	Registry *rmf.Registry
	// AllocatorAddr is the RMF resource allocator for rmf-type jobs.
	AllocatorAddr string
	// DefaultJobManager applies when the RSL names none ("fork").
	DefaultJobManager string
}

// managedJob is a job manager's record.
type managedJob struct {
	contact  string
	subject  string
	state    rmf.State
	errMsg   string
	handle   *rmf.JobHandle // rmf jobs
	pending  int            // fork jobs: processes still running
	canceled bool
}

// Gatekeeper authenticates and dispatches job requests.
type Gatekeeper struct {
	cfg      Config
	mu       sync.Mutex
	nextJob  int
	jobs     map[string]*managedJob
	listener transport.Listener
	trace    func(format string, args ...interface{})
}

// NewGatekeeper creates a gatekeeper.
func NewGatekeeper(cfg Config) *Gatekeeper {
	if cfg.DefaultJobManager == "" {
		cfg.DefaultJobManager = "fork"
	}
	return &Gatekeeper{cfg: cfg, jobs: make(map[string]*managedJob)}
}

// SetTrace installs a tracing callback (the Figure 2 renderer).
func (g *Gatekeeper) SetTrace(fn func(string, ...interface{})) { g.trace = fn }

func (g *Gatekeeper) tracef(format string, args ...interface{}) {
	if g.trace != nil {
		g.trace(format, args...)
	}
}

// Serve binds the gatekeeper port and accepts submissions; it blocks its
// process.
func (g *Gatekeeper) Serve(env transport.Env, port int, ready func(addr string)) error {
	l, err := env.Listen(port)
	if err != nil {
		return fmt.Errorf("gram: listen: %w", err)
	}
	g.listener = l
	if ready != nil {
		ready(l.Addr())
	}
	for {
		c, err := l.Accept(env)
		if err != nil {
			return nil
		}
		conn := c
		env.SpawnService("gatekeeper:conn", func(e transport.Env) { g.handle(e, conn) })
	}
}

// Close shuts the listener down.
func (g *Gatekeeper) Close(env transport.Env) {
	if g.listener != nil {
		_ = g.listener.Close(env)
	}
}

func (g *Gatekeeper) handle(env transport.Env, c transport.Conn) {
	defer c.Close(env)
	// Adopt the submitter's trace context from connection baggage: job
	// manager processes spawned below inherit it, chaining the RSL submit
	// leg into the submitter's trace.
	obs.SetCtx(env, obs.BaggageOf(c))
	subject, err := auth.Accept(env, c, g.cfg.Keyring)
	if err != nil {
		g.tracef("gatekeeper: authentication failed: %v", err)
		return
	}
	local, _ := g.cfg.Keyring.LocalUser(subject)
	g.tracef("gatekeeper: authenticated %s (local user %s)", subject, local)

	st := transport.Stream{Env: env, Conn: c}
	req, err := nexus.ReadFrame(st, 0)
	if err != nil {
		return
	}
	op, err := req.GetInt32()
	if err != nil {
		return
	}
	resp := nexus.NewBuffer()
	switch op {
	case opSubmit:
		rslText, err := req.GetString()
		if err != nil {
			putErr(resp, err)
			break
		}
		contact, err := g.submit(env, subject, rslText)
		if err != nil {
			putErr(resp, err)
			break
		}
		resp.PutBool(true)
		resp.PutString(contact)
	case opStatus:
		contact, err := req.GetString()
		if err != nil {
			putErr(resp, err)
			break
		}
		state, msg, err := g.jobStatus(contact)
		if err != nil {
			putErr(resp, err)
			break
		}
		resp.PutBool(true)
		resp.PutInt32(int32(state))
		resp.PutString(msg)
	case opCancel:
		contact, err := req.GetString()
		if err != nil {
			putErr(resp, err)
			break
		}
		if err := g.cancel(contact, subject); err != nil {
			putErr(resp, err)
			break
		}
		resp.PutBool(true)
	case opList:
		contacts := g.listJobs(subject)
		resp.PutBool(true)
		resp.PutInt32(int32(len(contacts)))
		for _, c := range contacts {
			resp.PutString(c)
		}
	default:
		putErr(resp, fmt.Errorf("gram: unknown op %d", op))
	}
	_ = nexus.WriteFrame(st, resp)
}

func putErr(b *nexus.Buffer, err error) {
	b.PutBool(false)
	b.PutString(err.Error())
}

// submit parses the RSL and forks the job manager (Figure 2 step 2: "the
// job manager invoked by the gatekeeper creates a Q client process").
func (g *Gatekeeper) submit(env transport.Env, subject, rslText string) (string, error) {
	spec, err := rsl.Parse(rslText)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if spec.IsMulti() {
		return "", fmt.Errorf("%w: multirequests are co-allocated client-side (SubmitMulti)", ErrBadRequest)
	}
	executable := spec.GetString("executable", "")
	if executable == "" {
		return "", fmt.Errorf("%w: missing executable", ErrBadRequest)
	}
	count := spec.GetInt("count", 1)
	if count < 1 {
		return "", fmt.Errorf("%w: bad count", ErrBadRequest)
	}
	jmType := spec.GetString("jobmanager", g.cfg.DefaultJobManager)
	envPairs, err := spec.Pairs("environment")
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	envMap := make(map[string]string, len(envPairs))
	for _, kv := range envPairs {
		envMap[kv[0]] = kv[1]
	}
	procSpec := rmf.ProcessSpec{
		Executable: executable,
		Args:       spec.GetStrings("arguments"),
		Env:        envMap,
		StdinURL:   spec.GetString("stdin", ""),
		StdoutURL:  spec.GetString("stdout", ""),
	}

	g.mu.Lock()
	g.nextJob++
	contact := fmt.Sprintf("job-%d", g.nextJob)
	job := &managedJob{contact: contact, subject: subject, state: rmf.StatePending}
	g.jobs[contact] = job
	g.mu.Unlock()
	g.tracef("gatekeeper: job request %s from %s: %s x%d via %s jobmanager",
		contact, subject, executable, count, jmType)

	switch jmType {
	case "fork":
		g.startFork(env, job, procSpec, count)
	case "rmf":
		if g.cfg.AllocatorAddr == "" {
			return "", fmt.Errorf("%w: gatekeeper has no RMF allocator configured", ErrBadRequest)
		}
		cluster := spec.GetString("cluster", "")
		g.startRMF(env, job, procSpec, count, cluster)
	default:
		return "", fmt.Errorf("%w: unknown jobmanager %q", ErrBadRequest, jmType)
	}
	return contact, nil
}

// startFork runs count processes on the gatekeeper's own host.
func (g *Gatekeeper) startFork(env transport.Env, job *managedJob, spec rmf.ProcessSpec, count int) {
	prog, ok := g.cfg.Registry.Lookup(spec.Executable)
	if !ok {
		g.fail(job, fmt.Errorf("no such executable %q", spec.Executable))
		return
	}
	job.state = rmf.StateActive
	job.pending = count
	for i := 0; i < count; i++ {
		i := i
		env.Spawn(fmt.Sprintf("fork:%s:%d", job.contact, i), func(e transport.Env) {
			o := obs.From(e)
			tc := o.BeginSpan(e.Now(), obs.CtxOf(e), "gram", "fork", e.Hostname(),
				obs.Str("contact", job.contact), obs.Int("proc", int64(i)))
			obs.SetCtx(e, tc)
			ctx := &rmf.JobContext{
				JobID:    fmt.Sprintf("%s/%d", job.contact, i),
				Resource: e.Hostname(),
				Args:     spec.Args,
				Env:      spec.Env,
				Trace:    tc,
			}
			err := prog(e, ctx)
			o.EndSpan(e.Now(), tc, "gram", "fork", e.Hostname())
			g.mu.Lock()
			defer g.mu.Unlock()
			job.pending--
			if err != nil && job.errMsg == "" {
				job.errMsg = err.Error()
			}
			if job.pending == 0 && job.state == rmf.StateActive && !job.canceled {
				if job.errMsg != "" {
					job.state = rmf.StateFailed
				} else {
					job.state = rmf.StateDone
				}
			}
		})
	}
}

// startRMF runs the job through the paper's Q system.
func (g *Gatekeeper) startRMF(env transport.Env, job *managedJob, spec rmf.ProcessSpec, count int, cluster string) {
	job.state = rmf.StateActive
	env.Spawn("jobmanager:"+job.contact, func(e transport.Env) {
		g.tracef("job manager %s: creating Q client", job.contact)
		// The job manager span covers the job's whole gatekeeper-side life
		// (Q client creation through completion). It roots the trace when
		// the submitter was untraced and joins theirs otherwise.
		o := obs.From(e)
		tc := o.BeginSpan(e.Now(), obs.CtxOf(e), "gram", "jobmanager", e.Hostname(),
			obs.Str("contact", job.contact), obs.Int("count", int64(count)))
		obs.SetCtx(e, tc)
		defer func() { o.EndSpan(e.Now(), tc, "gram", "jobmanager", e.Hostname()) }()
		h, err := rmf.SubmitJob(e, g.cfg.AllocatorAddr, rmf.JobRequest{
			Count:   count,
			Cluster: cluster,
			Spec:    spec,
		})
		if err != nil {
			g.fail(job, err)
			return
		}
		g.mu.Lock()
		job.handle = h
		g.mu.Unlock()
		if err := h.Wait(e, 10*time.Millisecond, 0); err != nil {
			g.fail(job, err)
			return
		}
		g.mu.Lock()
		if !job.canceled {
			job.state = rmf.StateDone
		}
		g.mu.Unlock()
		g.tracef("job manager %s: all processes done", job.contact)
	})
}

func (g *Gatekeeper) fail(job *managedJob, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if job.canceled {
		return // cancellation message wins
	}
	job.state = rmf.StateFailed
	job.errMsg = err.Error()
	g.tracef("job %s failed: %v", job.contact, err)
}

// cancel marks a job canceled. A pending or active job moves to FAILED with
// a cancellation message; already-running processes finish their current
// work (the Q system has no preemption, like the paper's), but the job
// manager stops tracking them. Only the submitting subject may cancel.
func (g *Gatekeeper) cancel(contact, subject string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	job, ok := g.jobs[contact]
	if !ok {
		return fmt.Errorf("gram: unknown job contact %q", contact)
	}
	if job.subject != subject {
		return fmt.Errorf("gram: job %s belongs to another subject", contact)
	}
	if job.state == rmf.StateDone || job.state == rmf.StateFailed {
		return fmt.Errorf("gram: job %s already finished (%s)", contact, job.state)
	}
	job.canceled = true
	job.state = rmf.StateFailed
	job.errMsg = "canceled by " + subject
	g.tracef("gatekeeper: job %s canceled by %s", contact, subject)
	return nil
}

// listJobs returns the subject's job contacts, sorted.
func (g *Gatekeeper) listJobs(subject string) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []string
	for contact, job := range g.jobs {
		if job.subject == subject {
			out = append(out, contact)
		}
	}
	sort.Strings(out)
	return out
}

func (g *Gatekeeper) jobStatus(contact string) (rmf.State, string, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	job, ok := g.jobs[contact]
	if !ok {
		return rmf.StateFailed, "", fmt.Errorf("gram: unknown job contact %q", contact)
	}
	return job.state, job.errMsg, nil
}
