package hbm

import (
	"errors"
	"testing"
	"time"

	"nxcluster/internal/sim"
	"nxcluster/internal/simnet"
	"nxcluster/internal/transport"
)

func TestHealthString(t *testing.T) {
	for h, want := range map[Health]string{Up: "UP", Late: "LATE", Down: "DOWN"} {
		if h.String() != want {
			t.Errorf("%d = %s", h, h.String())
		}
	}
}

func TestClassification(t *testing.T) {
	m := NewMonitor(time.Second) // grace 3s
	m.beat("p", 10*time.Second)
	cases := []struct {
		now  time.Duration
		want Health
	}{
		{10 * time.Second, Up},
		{11 * time.Second, Up},
		{12 * time.Second, Late},
		{14 * time.Second, Late},
		{14*time.Second + 1, Down},
		{time.Hour, Down},
	}
	for _, tc := range cases {
		h, err := m.Status("p", tc.now)
		if err != nil || h != tc.want {
			t.Errorf("Status at %v = %v, %v; want %v", tc.now, h, err, tc.want)
		}
	}
	if _, err := m.Status("ghost", 0); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown status = %v", err)
	}
}

// TestMonitorDetectsDeadProcessInSim runs the full loop: a reporter beats,
// the monitor sees UP; the reporter stops, the monitor transitions the
// process to DOWN; a second reporter keeps beating throughout.
func TestMonitorDetectsDeadProcessInSim(t *testing.T) {
	k := sim.New()
	n := simnet.New(k)
	n.AddHost("mon", simnet.HostConfig{})
	n.AddHost("svc", simnet.HostConfig{})
	n.Connect("mon", "svc", simnet.LinkConfig{Latency: time.Millisecond})

	m := NewMonitor(time.Second)
	n.Node("mon").SpawnDaemonOn("monitor", func(e transport.Env) {
		_ = m.Serve(e, 7300, nil)
	})

	flaky := &Reporter{MonitorAddr: "mon:7300", Name: "flaky", Interval: time.Second}
	steady := &Reporter{MonitorAddr: "mon:7300", Name: "steady", Interval: time.Second}
	var atFive, atTwenty Health
	var steadyLater Health
	var steadyBeats int64
	n.Node("svc").SpawnOn("driver", func(e transport.Env) {
		flaky.Start(e)
		steady.Start(e)
		e.Sleep(5 * time.Second)
		var err error
		atFive, err = QueryStatus(e, "mon:7300", "flaky")
		if err != nil {
			t.Error(err)
		}
		flaky.Abandon() // crash: stop beating without deregistering
		e.Sleep(15 * time.Second)
		atTwenty, err = QueryStatus(e, "mon:7300", "flaky")
		if err != nil {
			t.Error(err)
		}
		steadyLater, err = QueryStatus(e, "mon:7300", "steady")
		if err != nil {
			t.Error(err)
		}
		all, err := QueryAll(e, "mon:7300")
		if err != nil {
			t.Error(err)
		}
		if len(all) != 2 {
			t.Errorf("QueryAll = %v", all)
		}
		steadyBeats = m.Beats("steady")
		steady.Stop() // graceful: the final deregister beat removes the record
	})
	k.RunUntil(60 * time.Second)
	k.Shutdown()

	if atFive != Up {
		t.Fatalf("flaky at t=5s: %v, want UP", atFive)
	}
	if atTwenty != Down {
		t.Fatalf("flaky at t=20s: %v, want DOWN", atTwenty)
	}
	if steadyLater != Up {
		t.Fatalf("steady at t=20s: %v, want UP", steadyLater)
	}
	if steadyBeats < 15 {
		t.Fatalf("steady beat only %d times", steadyBeats)
	}
	// steady.Stop deregistered on its way out; flaky's abandoned record stays.
	final := m.Snapshot(20 * time.Second)
	if _, ok := final["steady"]; ok {
		t.Errorf("steady still registered after graceful Stop: %v", final)
	}
	if h, ok := final["flaky"]; !ok || h != Down {
		t.Errorf("flaky after Abandon = %v, %v; want DOWN", h, ok)
	}
}

// TestCustomThresholds exercises LateAfter/DownAfter overrides: the
// UP->LATE->DOWN transitions must follow the explicit knobs, not the
// Interval/Grace-derived defaults.
func TestCustomThresholds(t *testing.T) {
	m := NewMonitor(time.Second) // defaults: late after 1s, down after 4s
	m.LateAfter = 3 * time.Second
	m.DownAfter = 10 * time.Second
	m.beat("p", 0)
	cases := []struct {
		now  time.Duration
		want Health
	}{
		{2 * time.Second, Up},
		{3 * time.Second, Up},
		{3*time.Second + 1, Late},
		{10 * time.Second, Late},
		{10*time.Second + 1, Down},
	}
	for _, tc := range cases {
		h, err := m.Status("p", tc.now)
		if err != nil || h != tc.want {
			t.Errorf("Status at %v = %v, %v; want %v", tc.now, h, err, tc.want)
		}
	}
}

// TestDeregisterOverWire checks the opDeregister round trip: a deregistered
// process vanishes from Status and QueryAll instead of decaying to DOWN, and
// a later beat re-registers it from scratch.
func TestDeregisterOverWire(t *testing.T) {
	k := sim.New()
	n := simnet.New(k)
	n.AddHost("mon", simnet.HostConfig{})
	n.AddHost("svc", simnet.HostConfig{})
	n.Connect("mon", "svc", simnet.LinkConfig{Latency: time.Millisecond})

	m := NewMonitor(time.Second)
	n.Node("mon").SpawnDaemonOn("monitor", func(e transport.Env) {
		_ = m.Serve(e, 7300, nil)
	})
	n.Node("svc").SpawnOn("driver", func(e transport.Env) {
		if err := Beat(e, "mon:7300", "p"); err != nil {
			t.Error(err)
		}
		if h, err := QueryStatus(e, "mon:7300", "p"); err != nil || h != Up {
			t.Errorf("after beat: %v, %v", h, err)
		}
		if err := Deregister(e, "mon:7300", "p"); err != nil {
			t.Error(err)
		}
		if _, err := QueryStatus(e, "mon:7300", "p"); err == nil {
			t.Error("after deregister: status query succeeded, want unknown-process error")
		}
		all, err := QueryAll(e, "mon:7300")
		if err != nil || len(all) != 0 {
			t.Errorf("QueryAll after deregister = %v, %v", all, err)
		}
		if err := Beat(e, "mon:7300", "p"); err != nil {
			t.Error(err)
		}
		if h, err := QueryStatus(e, "mon:7300", "p"); err != nil || h != Up {
			t.Errorf("after re-registration: %v, %v", h, err)
		}
	})
	k.RunUntil(10 * time.Second)
	k.Shutdown()
	if got := m.Beats("p"); got != 1 {
		t.Errorf("beats after deregister+rebeat = %d, want 1 (counter reset)", got)
	}
}

func TestMonitorOverTCP(t *testing.T) {
	env := transport.NewTCPEnv("localhost")
	m := NewMonitor(50 * time.Millisecond)
	ready := make(chan string, 1)
	env.Spawn("mon", func(e transport.Env) {
		_ = m.Serve(e, 0, func(a string) { ready <- a })
	})
	addr := <-ready
	defer m.Close(env)

	if err := Beat(env, addr, "proc1"); err != nil {
		t.Fatal(err)
	}
	h, err := QueryStatus(env, addr, "proc1")
	if err != nil || h != Up {
		t.Fatalf("status = %v, %v", h, err)
	}
	env.Sleep(300 * time.Millisecond) // interval+grace = 200ms
	h, err = QueryStatus(env, addr, "proc1")
	if err != nil || h != Down {
		t.Fatalf("status after silence = %v, %v", h, err)
	}
	// Recovery: a fresh beat brings it back UP.
	if err := Beat(env, addr, "proc1"); err != nil {
		t.Fatal(err)
	}
	h, _ = QueryStatus(env, addr, "proc1")
	if h != Up {
		t.Fatalf("status after recovery = %v", h)
	}
	if _, err := QueryStatus(env, addr, "ghost"); err == nil {
		t.Fatal("unknown process accepted")
	}
}
