package hbm

import (
	"testing"
	"time"
)

// TestBeatBatch: a batch beat registers and beats every named process under
// one lock, equivalently to individual beats — the fleet control plane
// coalesces a whole site per tick this way.
func TestBeatBatch(t *testing.T) {
	m := NewMonitor(10 * time.Second)
	names := []string{"h0", "h1", "h2"}

	m.BeatBatch(1*time.Second, names)
	for _, n := range names {
		if got, err := m.Status(n, 2*time.Second); err != nil || got != Up {
			t.Fatalf("Status(%s) after batch = %v, %v; want UP", n, got, err)
		}
		if m.Beats(n) != 1 {
			t.Fatalf("Beats(%s) = %d after one batch", n, m.Beats(n))
		}
	}

	// A second batch advances every record together.
	m.BeatBatch(11*time.Second, names)
	for _, n := range names {
		if m.Beats(n) != 2 {
			t.Fatalf("Beats(%s) = %d after two batches", n, m.Beats(n))
		}
	}

	// A host dropped from the batch goes LATE then DOWN on schedule, while
	// batched hosts stay UP.
	m.BeatBatch(21*time.Second, names[:2])
	m.BeatBatch(31*time.Second, names[:2])
	m.BeatBatch(41*time.Second, names[:2])
	m.BeatBatch(51*time.Second, names[:2])
	// At t=55s: h0/h1 are 4s overdue (UP, threshold 10s); h2 last beat at
	// 11s is 44s overdue, past the 40s DOWN threshold.
	snap := m.Snapshot(55 * time.Second)
	if snap["h0"] != Up || snap["h1"] != Up {
		t.Fatalf("batched hosts not UP: %v", snap)
	}
	if snap["h2"] != Down {
		t.Fatalf("dropped host h2 = %v, want DOWN", snap["h2"])
	}

	// Empty batch is a no-op.
	m.BeatBatch(56*time.Second, nil)
	if len(m.Snapshot(56*time.Second)) != 3 {
		t.Fatal("empty batch changed registration set")
	}
}
