// Package hbm implements a Heartbeat Monitor in the mold of the Globus HBM
// service: long-running processes (gatekeepers, relay servers, Q servers)
// register with a monitor daemon and send periodic heartbeats; the monitor
// classifies each process as UP, LATE or DOWN from beat arrival times, and
// operators (or tests) query it for liveness. In a metacomputing testbed
// spanning firewalls this is how a site learns that a remote component died
// rather than merely stalled.
package hbm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"nxcluster/internal/nexus"
	"nxcluster/internal/obs"
	"nxcluster/internal/transport"
)

// ErrUnknown is returned for status queries on unregistered processes.
var ErrUnknown = errors.New("hbm: unknown process")

// Health is a monitored process's classification.
type Health int

// Health states: a process is UP while beats arrive on time, LATE once a
// beat is overdue by less than the grace period, and DOWN beyond it. With a
// SuspectWindow configured there is a fourth, gray state: SUSPECT marks a
// process that is degraded — still beating, but with gaps that would
// otherwise flap it DOWN and back UP — or freshly overdue past the DOWN
// threshold but inside the suspect window. Suspect is numbered after Down so
// the original three states keep their wire and gauge values.
const (
	Up Health = iota
	Late
	Down
	Suspect
)

// String renders the health state.
func (h Health) String() string {
	switch h {
	case Up:
		return "UP"
	case Late:
		return "LATE"
	case Suspect:
		return "SUSPECT"
	default:
		return "DOWN"
	}
}

// Wire ops.
const (
	opBeat       = int32(1) // fields: name (registers implicitly)
	opStatus     = int32(2) // fields: name
	opList       = int32(3)
	opDeregister = int32(4) // fields: name (graceful shutdown, not a death)
)

// record tracks one process. seen is the classification last observed (by a
// beat, status query, or snapshot) — the reference point for transition
// events; health is computed lazily, so a transition becomes visible only
// when something looks.
type record struct {
	name     string
	lastBeat time.Duration
	beats    int64
	seen     Health
	// degraded marks a process whose beats arrive with gaps past the DOWN
	// threshold: alive, but impaired. Set and cleared at beat arrival; only
	// meaningful when the monitor has a SuspectWindow.
	degraded bool
}

// Monitor is the heartbeat collector daemon.
type Monitor struct {
	// Interval is the expected beat period.
	Interval time.Duration
	// Grace is how far past the interval a beat may be before the process
	// is DOWN (default: 3x Interval).
	Grace time.Duration
	// LateAfter, when nonzero, overrides the UP->LATE threshold: a process
	// whose last beat is overdue by more than LateAfter is LATE. Zero
	// derives the threshold from Interval.
	LateAfter time.Duration
	// DownAfter, when nonzero, overrides the LATE->DOWN threshold. Zero
	// derives it from Interval+Grace.
	DownAfter time.Duration
	// SuspectWindow, when nonzero, enables gray-failure classification: a
	// process overdue past the DOWN threshold is held SUSPECT for
	// SuspectWindow before decaying to DOWN, and a process whose beats keep
	// arriving but with DOWN-sized gaps is SUSPECT (degraded) instead of
	// flapping DOWN -> UP on every beat. Zero preserves the original
	// three-state behavior exactly.
	SuspectWindow time.Duration

	mu       sync.Mutex
	procs    map[string]*record
	listener transport.Listener
	obs      *obs.Observer // bound at Serve; nil when tracing is off
	// suspects/downs count transitions INTO the respective state — the
	// flap-vs-suspect evidence chaos invariants assert on.
	suspects int64
	downs    int64
}

// NewMonitor creates a monitor expecting beats every interval.
func NewMonitor(interval time.Duration) *Monitor {
	return &Monitor{
		Interval: interval,
		Grace:    3 * interval,
		procs:    make(map[string]*record),
	}
}

// beat records a heartbeat at the monitor's current time. With a
// SuspectWindow, beat gaps drive the degraded flag: a gap past the DOWN
// threshold marks the process degraded (it would have flapped DOWN between
// beats), and a gap back inside the LATE threshold clears it; gaps in
// between keep the previous verdict (hysteresis, so a borderline process
// doesn't oscillate).
func (m *Monitor) beat(name string, now time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.beatLocked(name, now)
}

// BeatBatch records one coalesced heartbeat for each named process at time
// now, equivalent to beating each name in order but under a single lock
// acquisition and without per-host wire traffic. Fleet-scale site gateways
// report all their hosts in one batch per interval, so monitor cost scales
// with the site count rather than the host count.
func (m *Monitor) BeatBatch(now time.Duration, names []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, name := range names {
		m.beatLocked(name, now)
	}
}

// beatLocked is beat's body; callers hold m.mu.
func (m *Monitor) beatLocked(name string, now time.Duration) {
	r := m.procs[name]
	if r == nil {
		r = &record{name: name}
		m.procs[name] = r
	}
	if m.SuspectWindow > 0 && r.beats > 0 {
		late, down := m.thresholds()
		gap := now - r.lastBeat
		switch {
		case gap > down:
			r.degraded = true
		case gap <= late:
			r.degraded = false
		}
	}
	r.lastBeat = now
	r.beats++
	h := Up
	if m.SuspectWindow > 0 && r.degraded {
		h = Suspect
	}
	m.note(r, h, now)
}

// note records an observed classification, emitting a transition event when
// it differs from the last one seen. Callers hold m.mu.
func (m *Monitor) note(r *record, h Health, now time.Duration) {
	if h == r.seen {
		return
	}
	if o := m.obs; o != nil {
		o.Emit(now, "hbm", "transition", r.name,
			obs.Str("from", r.seen.String()), obs.Str("to", h.String()))
		o.Metrics().Counter("hbm.transitions").Add(1)
		// Per-process health level for the monitoring plane's state series
		// (Up=0, Late=1, Down=2, Suspect=3 — the Health enum order).
		o.Metrics().Gauge("hbm.state." + r.name).Set(int64(h))
	}
	switch h {
	case Suspect:
		m.suspects++
	case Down:
		m.downs++
	}
	r.seen = h
}

// SuspectCount reports how many transitions into SUSPECT the monitor has
// observed; DownCount the transitions into DOWN. A straggler under a
// SuspectWindow shows suspects > 0 with no DOWN churn, where the three-state
// monitor would have racked up DOWN -> UP flaps.
func (m *Monitor) SuspectCount() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.suspects
}

// DownCount reports transitions into DOWN (see SuspectCount).
func (m *Monitor) DownCount() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.downs
}

// Status classifies a process at time now.
func (m *Monitor) Status(name string, now time.Duration) (Health, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.procs[name]
	if !ok {
		return Down, fmt.Errorf("%w: %s", ErrUnknown, name)
	}
	h := m.classify(r, now)
	m.note(r, h, now)
	return h, nil
}

// thresholds resolves the effective LATE and DOWN overdue cutoffs.
func (m *Monitor) thresholds() (late, down time.Duration) {
	late = m.LateAfter
	if late <= 0 {
		late = m.Interval
	}
	down = m.DownAfter
	if down <= 0 {
		down = m.Interval + m.Grace
	}
	return late, down
}

func (m *Monitor) classify(r *record, now time.Duration) Health {
	late, down := m.thresholds()
	overdue := now - r.lastBeat
	if sw := m.SuspectWindow; sw > 0 {
		if overdue > down+sw {
			return Down // silent past the suspect window: genuinely dead
		}
		if r.degraded || overdue > down {
			return Suspect
		}
	}
	switch {
	case overdue <= late:
		return Up
	case overdue <= down:
		return Late
	default:
		return Down
	}
}

// deregister removes a process from the monitor: a graceful shutdown is not
// a death, and keeping the record around would report a phantom DOWN.
func (m *Monitor) deregister(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.procs, name)
}

// Snapshot lists every process's health at time now, sorted by name.
func (m *Monitor) Snapshot(now time.Duration) map[string]Health {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Transition events fire in sorted name order so traces stay
	// deterministic (map iteration order is not).
	names := make([]string, 0, len(m.procs))
	for name := range m.procs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]Health, len(m.procs))
	for _, name := range names {
		r := m.procs[name]
		h := m.classify(r, now)
		m.note(r, h, now)
		out[name] = h
	}
	return out
}

// Beats reports the total heartbeat count for a process.
func (m *Monitor) Beats(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.procs[name]; ok {
		return r.beats
	}
	return 0
}

// Serve runs the monitor's wire protocol; it blocks its process.
func (m *Monitor) Serve(env transport.Env, port int, ready func(addr string)) error {
	l, err := env.Listen(port)
	if err != nil {
		return fmt.Errorf("hbm: listen: %w", err)
	}
	m.listener = l
	m.obs = obs.From(env)
	if ready != nil {
		ready(l.Addr())
	}
	for {
		c, err := l.Accept(env)
		if err != nil {
			return nil
		}
		conn := c
		env.SpawnService("hbm:conn", func(e transport.Env) { m.handle(e, conn) })
	}
}

// Close shuts the listener down.
func (m *Monitor) Close(env transport.Env) {
	if m.listener != nil {
		_ = m.listener.Close(env)
	}
}

func (m *Monitor) handle(env transport.Env, c transport.Conn) {
	defer c.Close(env)
	st := transport.Stream{Env: env, Conn: c}
	req, err := nexus.ReadFrame(st, 0)
	if err != nil {
		return
	}
	op, err := req.GetInt32()
	if err != nil {
		return
	}
	resp := nexus.NewBuffer()
	switch op {
	case opBeat:
		name, err := req.GetString()
		if err != nil || name == "" {
			resp.PutBool(false)
			resp.PutString("hbm: bad beat")
			break
		}
		m.beat(name, env.Now())
		resp.PutBool(true)
	case opDeregister:
		name, err := req.GetString()
		if err != nil || name == "" {
			resp.PutBool(false)
			resp.PutString("hbm: bad deregister")
			break
		}
		m.deregister(name)
		resp.PutBool(true)
	case opStatus:
		name, err := req.GetString()
		if err != nil {
			resp.PutBool(false)
			resp.PutString(err.Error())
			break
		}
		h, err := m.Status(name, env.Now())
		if err != nil {
			resp.PutBool(false)
			resp.PutString(err.Error())
			break
		}
		resp.PutBool(true)
		resp.PutInt32(int32(h))
	case opList:
		snap := m.Snapshot(env.Now())
		names := make([]string, 0, len(snap))
		for n := range snap {
			names = append(names, n)
		}
		sort.Strings(names)
		resp.PutBool(true)
		resp.PutInt32(int32(len(names)))
		for _, n := range names {
			resp.PutString(n)
			resp.PutInt32(int32(snap[n]))
		}
	default:
		resp.PutBool(false)
		resp.PutString("hbm: unknown op")
	}
	_ = nexus.WriteFrame(st, resp)
}

// Beat sends one heartbeat for name to the monitor at addr.
func Beat(env transport.Env, addr, name string) error {
	req := nexus.NewBuffer()
	req.PutInt32(opBeat)
	req.PutString(name)
	_, err := roundTrip(env, addr, req)
	return err
}

// Deregister removes name from the monitor at addr: the process is shutting
// down on purpose and should stop being reported at all, rather than decay
// to DOWN.
func Deregister(env transport.Env, addr, name string) error {
	req := nexus.NewBuffer()
	req.PutInt32(opDeregister)
	req.PutString(name)
	_, err := roundTrip(env, addr, req)
	return err
}

// QueryStatus asks the monitor for a process's health.
func QueryStatus(env transport.Env, addr, name string) (Health, error) {
	req := nexus.NewBuffer()
	req.PutInt32(opStatus)
	req.PutString(name)
	resp, err := roundTrip(env, addr, req)
	if err != nil {
		return Down, err
	}
	h, err := resp.GetInt32()
	return Health(h), err
}

// QueryAll asks the monitor for every process's health.
func QueryAll(env transport.Env, addr string) (map[string]Health, error) {
	req := nexus.NewBuffer()
	req.PutInt32(opList)
	resp, err := roundTrip(env, addr, req)
	if err != nil {
		return nil, err
	}
	n, err := resp.GetInt32()
	if err != nil {
		return nil, err
	}
	out := make(map[string]Health, n)
	for i := int32(0); i < n; i++ {
		name, e1 := resp.GetString()
		h, e2 := resp.GetInt32()
		if e1 != nil || e2 != nil {
			return nil, errors.New("hbm: malformed list reply")
		}
		out[name] = Health(h)
	}
	return out, nil
}

func roundTrip(env transport.Env, addr string, req *nexus.Buffer) (*nexus.Buffer, error) {
	c, err := env.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("hbm: dial %s: %w", addr, err)
	}
	defer c.Close(env)
	st := transport.Stream{Env: env, Conn: c}
	if err := nexus.WriteFrame(st, req); err != nil {
		return nil, err
	}
	resp, err := nexus.ReadFrame(st, 0)
	if err != nil {
		return nil, err
	}
	ok, err := resp.GetBool()
	if err != nil {
		return nil, err
	}
	if !ok {
		msg, _ := resp.GetString()
		return nil, errors.New(msg)
	}
	return resp, nil
}

// Reporter periodically beats on behalf of a named process. Start launches
// the beat loop as a service process; Stop ends it gracefully (with a final
// deregister beat), Abandon ends it silently, modeling a crash.
type Reporter struct {
	// MonitorAddr is the monitor's "host:port".
	MonitorAddr string
	// Name identifies this process to the monitor.
	Name string
	// Interval between beats (use the monitor's).
	Interval time.Duration
	// BeatCost, when nonzero, models the local work of producing one beat
	// (collecting stats, serializing) as a Compute charge before each send.
	// On a slowed or contended host the charge stretches, beats arrive with
	// growing gaps, and a SuspectWindow-enabled monitor classifies the host
	// SUSPECT instead of flapping it DOWN/UP. Zero (the default) keeps the
	// loop compute-free and bit-identical to the original.
	BeatCost time.Duration

	stopped   bool
	abandoned bool
	mu        sync.Mutex
}

// Start launches the beat loop.
func (r *Reporter) Start(env transport.Env) {
	env.SpawnService("hbm:reporter:"+r.Name, func(e transport.Env) {
		for {
			r.mu.Lock()
			stopped, abandoned := r.stopped, r.abandoned
			r.mu.Unlock()
			if stopped {
				if !abandoned {
					_ = Deregister(e, r.MonitorAddr, r.Name) // best effort
				}
				return
			}
			if r.BeatCost > 0 {
				e.Compute(r.BeatCost)
			}
			_ = Beat(e, r.MonitorAddr, r.Name) // best effort
			e.Sleep(r.Interval)
		}
	})
}

// Stop ends the beat loop after its current sleep; on its way out the loop
// sends a deregister beat so the monitor drops the record instead of letting
// it decay to DOWN.
func (r *Reporter) Stop() {
	r.mu.Lock()
	r.stopped = true
	r.mu.Unlock()
}

// Abandon ends the beat loop without deregistering: the monitor keeps the
// record and will classify the process LATE, then DOWN, exactly as if it
// crashed. Tests and fault-injection harnesses use this to model failures.
func (r *Reporter) Abandon() {
	r.mu.Lock()
	r.stopped = true
	r.abandoned = true
	r.mu.Unlock()
}
