package hbm

import (
	"testing"
	"time"
)

// suspectMonitor: Interval 100ms, explicit thresholds late=100ms down=400ms,
// SuspectWindow 1s — so overdue in (400ms, 1400ms] is SUSPECT and only past
// 1400ms is DOWN.
func suspectMonitor() *Monitor {
	m := NewMonitor(100 * time.Millisecond)
	m.LateAfter = 100 * time.Millisecond
	m.DownAfter = 400 * time.Millisecond
	m.SuspectWindow = time.Second
	return m
}

func TestSuspectString(t *testing.T) {
	if Suspect.String() != "SUSPECT" {
		t.Errorf("Suspect = %s", Suspect.String())
	}
}

// TestSuspectDegradedHysteresis drives beats with widening and then shrinking
// gaps: a gap past the DOWN threshold marks the process degraded (SUSPECT on
// its own beats), a mid-band gap keeps the previous verdict, and a gap back
// inside the LATE threshold clears it to UP.
func TestSuspectDegradedHysteresis(t *testing.T) {
	m := suspectMonitor()
	status := func(now time.Duration) Health {
		h, err := m.Status("p", now)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	m.beat("p", 0)
	if got := status(50 * time.Millisecond); got != Up {
		t.Fatalf("fresh process = %v, want UP", got)
	}
	m.beat("p", 500*time.Millisecond) // gap 500ms > down: degraded
	if got := status(520 * time.Millisecond); got != Suspect {
		t.Fatalf("after DOWN-sized gap = %v, want SUSPECT", got)
	}
	m.beat("p", 700*time.Millisecond) // gap 200ms: mid-band, hysteresis holds
	if got := status(720 * time.Millisecond); got != Suspect {
		t.Fatalf("mid-band gap = %v, want SUSPECT held", got)
	}
	m.beat("p", 750*time.Millisecond) // gap 50ms <= late: recovered
	if got := status(760 * time.Millisecond); got != Up {
		t.Fatalf("after tight gap = %v, want UP", got)
	}
	if m.SuspectCount() != 1 {
		t.Errorf("SuspectCount = %d, want 1 (one transition into SUSPECT)", m.SuspectCount())
	}
	if m.DownCount() != 0 {
		t.Errorf("DownCount = %d, want 0 (no flap to DOWN)", m.DownCount())
	}
}

// TestSuspectDecaysToDown pins the silence path: overdue past the DOWN
// threshold is SUSPECT for SuspectWindow, then genuinely DOWN.
func TestSuspectDecaysToDown(t *testing.T) {
	m := suspectMonitor()
	m.beat("p", 0)
	cases := []struct {
		now  time.Duration
		want Health
	}{
		{50 * time.Millisecond, Up},
		{200 * time.Millisecond, Late},
		{450 * time.Millisecond, Suspect},  // past down, inside window
		{1400 * time.Millisecond, Suspect}, // window edge
		{1401 * time.Millisecond, Down},    // past down + window
	}
	for _, tc := range cases {
		if h, _ := m.Status("p", tc.now); h != tc.want {
			t.Errorf("Status at %v = %v, want %v", tc.now, h, tc.want)
		}
	}
	if m.SuspectCount() != 1 || m.DownCount() != 1 {
		t.Errorf("counts = %d suspects / %d downs, want 1/1", m.SuspectCount(), m.DownCount())
	}
}

// TestZeroSuspectWindowKeepsThreeStates guards the compatibility contract: a
// monitor without a SuspectWindow never reports SUSPECT, even for gappy beats.
func TestZeroSuspectWindowKeepsThreeStates(t *testing.T) {
	m := NewMonitor(100 * time.Millisecond)
	m.LateAfter = 100 * time.Millisecond
	m.DownAfter = 400 * time.Millisecond
	m.beat("p", 0)
	m.beat("p", 500*time.Millisecond) // DOWN-sized gap
	for _, tc := range []struct {
		now  time.Duration
		want Health
	}{
		{520 * time.Millisecond, Up}, // beat just arrived: straight back UP
		{700 * time.Millisecond, Late},
		{950 * time.Millisecond, Down},
	} {
		if h, _ := m.Status("p", tc.now); h != tc.want {
			t.Errorf("Status at %v = %v, want %v", tc.now, h, tc.want)
		}
	}
	if m.SuspectCount() != 0 {
		t.Errorf("SuspectCount = %d, want 0 without a SuspectWindow", m.SuspectCount())
	}
	if m.DownCount() != 1 {
		t.Errorf("DownCount = %d, want 1 (flapped DOWN once)", m.DownCount())
	}
}
