// Package rsl implements the Globus Resource Specification Language used to
// describe job requests submitted to a gatekeeper, covering the subset the
// paper's system needs: conjunctions of attribute relations
//
//	&(executable=/usr/local/bin/knapsack)(count=8)(arguments=50 "steal=4")
//	 (environment=(NEXUS_PROXY_OUTER_SERVER rwcp-outer:7000))
//
// and DUROC-style multirequests, which co-allocate one job across several
// resource managers:
//
//	+(&(resourceManagerContact=rwcp)(count=4))
//	 (&(resourceManagerContact=etl)(count=8))
package rsl

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrSyntax reports a malformed specification.
var ErrSyntax = errors.New("rsl: syntax error")

// Value is one relation value: a string or a parenthesized list.
type Value struct {
	// Str holds the scalar value when List is nil.
	Str string
	// List holds sublist values, e.g. environment pairs.
	List []Value
}

// IsList reports whether the value is a sublist.
func (v Value) IsList() bool { return v.List != nil }

// StringValue builds a scalar value.
func StringValue(s string) Value { return Value{Str: s} }

// ListValue builds a sublist value.
func ListValue(vs ...Value) Value {
	if vs == nil {
		vs = []Value{}
	}
	return Value{List: vs}
}

// Relation is one (attribute = values...) clause.
type Relation struct {
	Attr   string
	Values []Value
}

// Spec is a parsed request: either a conjunction of relations or a
// multirequest of sub-specifications.
type Spec struct {
	// Multi is non-nil for a '+' multirequest.
	Multi []*Spec
	// Relations holds the '&' conjunction's clauses.
	Relations []Relation
}

// IsMulti reports whether the spec is a multirequest.
func (s *Spec) IsMulti() bool { return s.Multi != nil }

// Get returns the values of the first relation with the attribute
// (case-insensitive), as Globus RSL attribute matching does.
func (s *Spec) Get(attr string) ([]Value, bool) {
	for _, r := range s.Relations {
		if strings.EqualFold(r.Attr, attr) {
			return r.Values, true
		}
	}
	return nil, false
}

// GetString returns the attribute's single scalar value, or def.
func (s *Spec) GetString(attr, def string) string {
	vs, ok := s.Get(attr)
	if !ok || len(vs) == 0 || vs[0].IsList() {
		return def
	}
	return vs[0].Str
}

// GetInt returns the attribute's single integer value, or def.
func (s *Spec) GetInt(attr string, def int) int {
	str := s.GetString(attr, "")
	if str == "" {
		return def
	}
	n, err := strconv.Atoi(str)
	if err != nil {
		return def
	}
	return n
}

// GetStrings returns the attribute's scalar values.
func (s *Spec) GetStrings(attr string) []string {
	vs, _ := s.Get(attr)
	var out []string
	for _, v := range vs {
		if !v.IsList() {
			out = append(out, v.Str)
		}
	}
	return out
}

// Pairs interprets the attribute's values as (name value) sublists, the RSL
// environment convention.
func (s *Spec) Pairs(attr string) ([][2]string, error) {
	vs, ok := s.Get(attr)
	if !ok {
		return nil, nil
	}
	var out [][2]string
	for _, v := range vs {
		if !v.IsList() || len(v.List) != 2 || v.List[0].IsList() || v.List[1].IsList() {
			return nil, fmt.Errorf("%w: %s wants (name value) pairs", ErrSyntax, attr)
		}
		out = append(out, [2]string{v.List[0].Str, v.List[1].Str})
	}
	return out, nil
}

// Set adds or replaces a relation.
func (s *Spec) Set(attr string, values ...Value) {
	for i, r := range s.Relations {
		if strings.EqualFold(r.Attr, attr) {
			s.Relations[i].Values = values
			return
		}
	}
	s.Relations = append(s.Relations, Relation{Attr: attr, Values: values})
}

// String renders the spec in canonical RSL syntax.
func (s *Spec) String() string {
	var b strings.Builder
	s.render(&b)
	return b.String()
}

func (s *Spec) render(b *strings.Builder) {
	if s.IsMulti() {
		b.WriteByte('+')
		for _, sub := range s.Multi {
			b.WriteByte('(')
			sub.render(b)
			b.WriteByte(')')
		}
		return
	}
	b.WriteByte('&')
	for _, r := range s.Relations {
		b.WriteByte('(')
		b.WriteString(r.Attr)
		b.WriteByte('=')
		for i, v := range r.Values {
			if i > 0 {
				b.WriteByte(' ')
			}
			renderValue(b, v)
		}
		b.WriteByte(')')
	}
}

func renderValue(b *strings.Builder, v Value) {
	if v.IsList() {
		b.WriteByte('(')
		for i, e := range v.List {
			if i > 0 {
				b.WriteByte(' ')
			}
			renderValue(b, e)
		}
		b.WriteByte(')')
		return
	}
	if needsQuoting(v.Str) {
		b.WriteByte('"')
		b.WriteString(strings.ReplaceAll(v.Str, `"`, `""`))
		b.WriteByte('"')
		return
	}
	b.WriteString(v.Str)
}

// needsQuoting reports whether a scalar must be rendered quoted to survive
// reparsing: empty strings, RSL structural characters, and anything below
// 0x21 (whitespace and control bytes, which the word scanner either stops
// at or which read ambiguously unquoted).
func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= 0x20 || c == '(' || c == ')' || c == '=' || c == '"' || c == '&' || c == '+' {
			return true
		}
	}
	return false
}

// Parse parses an RSL string.
func Parse(input string) (*Spec, error) {
	p := &parser{in: input}
	spec, err := p.parseSpec()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("%w: trailing input at offset %d", ErrSyntax, p.pos)
	}
	return spec, nil
}

type parser struct {
	in  string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n' || p.in[p.pos] == '\r') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

func (p *parser) parseSpec() (*Spec, error) {
	p.skipSpace()
	switch p.peek() {
	case '+':
		p.pos++
		spec := &Spec{Multi: []*Spec{}}
		for {
			p.skipSpace()
			if p.peek() != '(' {
				break
			}
			p.pos++
			sub, err := p.parseSpec()
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			if p.peek() != ')' {
				return nil, fmt.Errorf("%w: unterminated multirequest element", ErrSyntax)
			}
			p.pos++
			spec.Multi = append(spec.Multi, sub)
		}
		if len(spec.Multi) == 0 {
			return nil, fmt.Errorf("%w: empty multirequest", ErrSyntax)
		}
		return spec, nil
	case '&':
		p.pos++
		fallthrough
	default:
		spec := &Spec{}
		for {
			p.skipSpace()
			if p.peek() != '(' {
				break
			}
			p.pos++
			rel, err := p.parseRelation()
			if err != nil {
				return nil, err
			}
			spec.Relations = append(spec.Relations, rel)
		}
		if len(spec.Relations) == 0 {
			return nil, fmt.Errorf("%w: empty specification", ErrSyntax)
		}
		return spec, nil
	}
}

func (p *parser) parseRelation() (Relation, error) {
	p.skipSpace()
	attr, err := p.parseWord()
	if err != nil {
		return Relation{}, err
	}
	p.skipSpace()
	if p.peek() != '=' {
		return Relation{}, fmt.Errorf("%w: expected '=' after attribute %q", ErrSyntax, attr)
	}
	p.pos++
	var values []Value
	for {
		p.skipSpace()
		c := p.peek()
		if c == ')' {
			p.pos++
			return Relation{Attr: attr, Values: values}, nil
		}
		// Check the position, not the byte: a literal NUL is word data, not
		// end of input.
		if p.pos >= len(p.in) {
			return Relation{}, fmt.Errorf("%w: unterminated relation %q", ErrSyntax, attr)
		}
		v, err := p.parseValue()
		if err != nil {
			return Relation{}, err
		}
		values = append(values, v)
	}
}

func (p *parser) parseValue() (Value, error) {
	p.skipSpace()
	switch p.peek() {
	case '(':
		p.pos++
		list := []Value{}
		for {
			p.skipSpace()
			if p.peek() == ')' {
				p.pos++
				return Value{List: list}, nil
			}
			if p.pos >= len(p.in) {
				return Value{}, fmt.Errorf("%w: unterminated value list", ErrSyntax)
			}
			v, err := p.parseValue()
			if err != nil {
				return Value{}, err
			}
			list = append(list, v)
		}
	case '"':
		return p.parseQuoted()
	default:
		w, err := p.parseWord()
		if err != nil {
			return Value{}, err
		}
		return Value{Str: w}, nil
	}
}

func (p *parser) parseQuoted() (Value, error) {
	p.pos++ // opening quote
	var b strings.Builder
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == '"' {
			// RSL escapes a quote by doubling it.
			if p.pos+1 < len(p.in) && p.in[p.pos+1] == '"' {
				b.WriteByte('"')
				p.pos += 2
				continue
			}
			p.pos++
			return Value{Str: b.String()}, nil
		}
		b.WriteByte(c)
		p.pos++
	}
	return Value{}, fmt.Errorf("%w: unterminated quoted string", ErrSyntax)
}

func (p *parser) parseWord() (string, error) {
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '(' || c == ')' || c == '=' || c == '"' {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("%w: expected word at offset %d", ErrSyntax, start)
	}
	return p.in[start:p.pos], nil
}
