package rsl

import "testing"

// FuzzParse hammers the RSL parser with arbitrary input. Malformed
// specifications must come back as ErrSyntax-wrapped errors — never a panic
// — and anything that parses must round-trip through String: the rendered
// form reparses, and rendering is a fixed point (render(parse(render(s))) ==
// render(s)), so the printer and parser agree on the grammar.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"&(executable=/usr/local/bin/knapsack)(count=8)",
		`&(arguments=50 "steal=4")(environment=(NEXUS_PROXY_OUTER_SERVER rwcp-outer:7000))`,
		"+(&(resourceManagerContact=rwcp)(count=4))(&(resourceManagerContact=etl)(count=8))",
		"&(count=8",
		"&()",
		"+()",
		"&(a=())",
		"&(a=(b (c d)))",
		`&(a="unterminated`,
		"&(a=\"quo\\\"te\")",
		"(count=8)",
		"&(=8)",
		"& (x = 1 2 3)",
		"+(&(a=1))(junk",
		"&(a=1)trailing",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := Parse(input)
		if err != nil {
			return
		}
		if spec == nil {
			t.Fatalf("Parse(%q) returned nil spec and nil error", input)
		}
		rendered := spec.String()
		spec2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q) ok but rendered form %q fails to reparse: %v", input, rendered, err)
		}
		if r2 := spec2.String(); r2 != rendered {
			t.Fatalf("render not a fixed point: %q -> %q -> %q", input, rendered, r2)
		}
	})
}
