package rsl_test

import (
	"fmt"

	"nxcluster/internal/rsl"
)

func ExampleParse() {
	spec, err := rsl.Parse(`&(executable=/usr/local/bin/knapsack)(count=8)(jobmanager=rmf)` +
		`(environment=(NEXUS_PROXY_OUTER_SERVER rwcp-outer:7000))`)
	if err != nil {
		panic(err)
	}
	fmt.Println(spec.GetString("executable", ""))
	fmt.Println(spec.GetInt("count", 1))
	pairs, _ := spec.Pairs("environment")
	fmt.Println(pairs[0][0], "=", pairs[0][1])
	// Output:
	// /usr/local/bin/knapsack
	// 8
	// NEXUS_PROXY_OUTER_SERVER = rwcp-outer:7000
}

func ExampleParse_multirequest() {
	spec, err := rsl.Parse(`+(&(resourceManagerContact=rwcp)(count=4))` +
		`(&(resourceManagerContact=etl)(count=8))`)
	if err != nil {
		panic(err)
	}
	for _, sub := range spec.Multi {
		fmt.Println(sub.GetString("resourceManagerContact", ""), sub.GetInt("count", 0))
	}
	// Output:
	// rwcp 4
	// etl 8
}

func ExampleSpec_String() {
	spec := &rsl.Spec{}
	spec.Set("executable", rsl.StringValue("hostname"))
	spec.Set("count", rsl.StringValue("2"))
	fmt.Println(spec.String())
	// Output:
	// &(executable=hostname)(count=2)
}
