package rsl

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestParseConjunction(t *testing.T) {
	s, err := Parse(`&(executable=/bin/knapsack)(count=8)(arguments=50 "steal unit=4")`)
	if err != nil {
		t.Fatal(err)
	}
	if s.IsMulti() {
		t.Fatal("conjunction parsed as multirequest")
	}
	if got := s.GetString("executable", ""); got != "/bin/knapsack" {
		t.Fatalf("executable = %q", got)
	}
	if got := s.GetInt("count", 0); got != 8 {
		t.Fatalf("count = %d", got)
	}
	args := s.GetStrings("arguments")
	if len(args) != 2 || args[0] != "50" || args[1] != "steal unit=4" {
		t.Fatalf("arguments = %v", args)
	}
}

func TestParseWithoutAmpersand(t *testing.T) {
	s, err := Parse(`(executable=/bin/a)`)
	if err != nil {
		t.Fatal(err)
	}
	if s.GetString("executable", "") != "/bin/a" {
		t.Fatal("implicit conjunction broken")
	}
}

func TestParseEnvironmentPairs(t *testing.T) {
	s, err := Parse(`&(environment=(NEXUS_PROXY_OUTER_SERVER rwcp-outer:7000)(NEXUS_PROXY_INNER_SERVER rwcp-inner:7010))`)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := s.Pairs("environment")
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 || pairs[0][0] != "NEXUS_PROXY_OUTER_SERVER" || pairs[1][1] != "rwcp-inner:7010" {
		t.Fatalf("pairs = %v", pairs)
	}
}

func TestParseMultirequest(t *testing.T) {
	s, err := Parse(`+(&(resourceManagerContact=rwcp)(count=4))(&(resourceManagerContact=etl)(count=8))`)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsMulti() || len(s.Multi) != 2 {
		t.Fatalf("multi = %v", s.Multi)
	}
	if s.Multi[0].GetString("resourceManagerContact", "") != "rwcp" {
		t.Fatal("first subrequest wrong")
	}
	if s.Multi[1].GetInt("count", 0) != 8 {
		t.Fatal("second subrequest wrong")
	}
}

func TestCaseInsensitiveAttributes(t *testing.T) {
	s, err := Parse(`&(Executable=/bin/a)`)
	if err != nil {
		t.Fatal(err)
	}
	if s.GetString("executable", "") != "/bin/a" {
		t.Fatal("attribute matching not case-insensitive")
	}
}

func TestQuotedEscapes(t *testing.T) {
	s, err := Parse(`&(arguments="say ""hi""")`)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.GetStrings("arguments"); len(got) != 1 || got[0] != `say "hi"` {
		t.Fatalf("arguments = %q", got)
	}
}

func TestSyntaxErrors(t *testing.T) {
	for _, bad := range []string{
		"", "&", "+", "&(a)", "&(a=", `&(a=")`, "&(a=b))", "+(a=b)", "&(=b)",
		"&(env=(a b)", "junk",
	} {
		if _, err := Parse(bad); !errors.Is(err, ErrSyntax) && err == nil {
			t.Errorf("Parse(%q) = %v, want syntax error", bad, err)
		}
	}
}

func TestSetAndRender(t *testing.T) {
	s := &Spec{}
	s.Set("executable", StringValue("/bin/knapsack"))
	s.Set("count", StringValue("8"))
	s.Set("environment", ListValue(StringValue("K"), StringValue("v 1")))
	s.Set("count", StringValue("12")) // replace
	out := s.String()
	re, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse %q: %v", out, err)
	}
	if re.GetInt("count", 0) != 12 {
		t.Fatalf("count after replace = %d", re.GetInt("count", 0))
	}
	pairs, err := re.Pairs("environment")
	if err != nil || len(pairs) != 1 || pairs[0][1] != "v 1" {
		t.Fatalf("environment round-trip = %v, %v", pairs, err)
	}
}

func TestRoundTripMulti(t *testing.T) {
	in := `+(&(a=1)(b=x y))(&(c="quoted val"))`
	s, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", s.String(), err)
	}
	if !s2.IsMulti() || len(s2.Multi) != 2 || s2.Multi[1].GetString("c", "") != "quoted val" {
		t.Fatalf("round trip lost structure: %s", s2.String())
	}
}

// Property: rendering then parsing preserves a single scalar attribute value
// exactly, whatever bytes it contains (excluding NUL which RSL never
// carries).
func TestQuickRenderParseRoundTrip(t *testing.T) {
	prop := func(val string) bool {
		for _, r := range val {
			if r == 0 {
				return true
			}
		}
		s := &Spec{}
		s.Set("attr", StringValue(val))
		re, err := Parse(s.String())
		if err != nil {
			return false
		}
		return re.GetString("attr", "\x00miss") == val
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPairsErrors(t *testing.T) {
	s, err := Parse(`&(environment=notalist)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Pairs("environment"); err == nil {
		t.Fatal("scalar environment accepted as pairs")
	}
	s2, _ := Parse(`&(a=1)`)
	if pairs, err := s2.Pairs("environment"); err != nil || pairs != nil {
		t.Fatal("missing attribute should give nil, nil")
	}
}
