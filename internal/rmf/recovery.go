package rmf

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nxcluster/internal/hbm"
	"nxcluster/internal/mds"
	"nxcluster/internal/obs"
	"nxcluster/internal/transport"
)

// This file is RMF's failure-detection and recovery layer. The allocator
// learns liveness from the heartbeat monitor and stops handing out slots on
// dead Q servers; the Q client resubmits with backoff and requeues processes
// lost to a crashed resource onto survivors. Everything here is opt-in: a
// job without a RecoveryPolicy behaves exactly as before.

// SetHealth records a resource's heartbeat classification. A transition to
// DOWN clears the resource's outstanding load — slots held by a dead host
// are gone, and keeping them would starve it after a restart. Unknown names
// are ignored (the monitor may track processes the allocator does not own).
func (a *Allocator) SetHealth(name string, h hbm.Health) {
	a.mu.Lock()
	defer a.mu.Unlock()
	r, ok := a.resources[name]
	if !ok {
		return
	}
	if h == hbm.Down && r.Health != hbm.Down {
		a.tracef("allocator: %s is DOWN; clearing %d slots", name, r.Load)
		r.Load = 0
	}
	if h != r.Health {
		a.tracef("allocator: %s health %v -> %v", name, r.Health, h)
	}
	r.Health = h
}

// Health reports the allocator's current view of a resource (Up for
// resources never classified, Down for unknown names).
func (a *Allocator) Health(name string) hbm.Health {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r, ok := a.resources[name]; ok {
		return r.Health
	}
	return hbm.Down
}

// WatchHBM launches a service that polls the heartbeat monitor at hbmAddr
// every interval and feeds the classifications into the allocator. Resource
// names must match the names their Q servers beat under. Poll errors are
// tolerated — the allocator keeps its last view while the monitor is
// unreachable.
func (a *Allocator) WatchHBM(env transport.Env, hbmAddr string, interval time.Duration) {
	env.SpawnService("rmf-alloc:hbm-watch", func(e transport.Env) {
		for {
			e.Sleep(interval)
			all, err := hbm.QueryAll(e, hbmAddr)
			if err != nil {
				continue
			}
			names := make([]string, 0, len(all))
			for n := range all {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				a.SetHealth(n, all[n])
			}
		}
	})
}

// WatchMDS launches a service that polls the GIS directory at mdsAddr every
// interval for monitor-published host status rows under base (entries with a
// "status" attribute, as written by the monitoring plane's Publisher) and
// feeds them into the allocator: status "down" marks the resource Down,
// anything else Up. It complements WatchHBM — heartbeats detect silent
// death, the directory reflects the monitor's consolidated view — and like
// it, poll errors keep the last classification.
func (a *Allocator) WatchMDS(env transport.Env, mdsAddr, base string, interval time.Duration) {
	env.SpawnService("rmf-alloc:mds-watch", func(e transport.Env) {
		for {
			e.Sleep(interval)
			entries, err := mds.Client{Addr: mdsAddr}.Search(e, base, "(status=*)")
			if err != nil {
				continue
			}
			for _, ent := range entries {
				name := ent.First("hn")
				if name == "" {
					// The DN's leading component carries the host name.
					if kv := strings.SplitN(ent.DN, ",", 2); strings.HasPrefix(kv[0], "hn=") {
						name = strings.TrimPrefix(kv[0], "hn=")
					}
				}
				if name == "" {
					continue
				}
				if ent.First("status") == "down" {
					a.SetHealth(name, hbm.Down)
				} else {
					a.SetHealth(name, hbm.Up)
				}
			}
		}
	})
}

// SubmitRetry submits one process to a Q server, retrying transient failures
// (dial refused during a restart window, a reset mid-handshake) with capped
// exponential backoff. attempts bounds the total tries; zero means 5.
func SubmitRetry(env transport.Env, qserverAddr string, spec ProcessSpec, bo transport.Backoff, attempts int) (string, error) {
	if attempts <= 0 {
		attempts = 5
	}
	if bo.Key == "" {
		bo.Key = "rmf-submit@" + qserverAddr
	}
	if bo.Rand == nil {
		bo.Rand = transport.RandOf(env)
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		id, err := Submit(env, qserverAddr, spec)
		if err == nil {
			return id, nil
		}
		lastErr = err
		env.Sleep(bo.Next())
	}
	return "", fmt.Errorf("rmf: submit to %s after %d attempts: %w", qserverAddr, attempts, lastErr)
}

// RecoveryPolicy makes JobHandle.Wait survive Q server failures. A process
// whose Q server stops answering Status (or forgets the job id across a
// restart) is declared lost after StatusRetries consecutive errors; its slot
// is released, a replacement is allocated — the health-aware allocator
// steers it off the dead resource — and the same spec resubmitted. Recovery
// gives at-least-once execution: a process that dies after doing work runs
// again from scratch, so programs must be idempotent or restartable.
type RecoveryPolicy struct {
	// StatusRetries is the number of consecutive Status failures before a
	// process is declared lost (default 3).
	StatusRetries int
	// Backoff paces replacement allocation and resubmission (zero value:
	// transport defaults).
	Backoff transport.Backoff
	// SpeculateAfter, when nonzero, is a per-process progress deadline: a
	// process still running SpeculateAfter past the start of its wait is
	// treated as a straggler and one speculative duplicate is launched on a
	// fresh slot — the load- and health-aware allocator steers the copy off
	// the busy or SUSPECT resource. Whichever copy reaches DONE first wins
	// and the loser's slot is released; a loser that is already executing
	// may still run to completion on its Q server. Like requeue this is
	// at-least-once execution with deduplication at the consumer: the job
	// handle records exactly one winning Process per index, the same ledger
	// discipline knapsack.RunFT uses to absorb duplicate steal results.
	// Zero disables speculation.
	SpeculateAfter time.Duration
}

// requeue replaces a lost process: release its slot, allocate a fresh one,
// resubmit the original spec. It retries until it succeeds or the deadline
// passes, because the allocator may briefly keep offering the dead resource
// until the heartbeat monitor classifies it DOWN.
func (h *JobHandle) requeue(env transport.Env, i int, deadline time.Duration, bo *transport.Backoff) error {
	p := h.Processes[i]
	// Resubmission dials carry the job's root context so the replacement
	// exec span parents under the same trace as the lost original.
	saved := obs.CtxOf(env)
	obs.SetCtx(env, h.Trace)
	defer obs.SetCtx(env, saved)
	_ = Release(env, h.AllocatorAddr, []string{p.Resource})
	for {
		if env.Now() > deadline {
			return fmt.Errorf("rmf: requeue of %s (lost on %s) timed out", p.JobID, p.Resource)
		}
		names, addrs, err := Allocate(env, h.AllocatorAddr, 1, h.Cluster)
		if err != nil {
			env.Sleep(bo.Next())
			continue
		}
		id, err := Submit(env, addrs[0], h.Specs[i])
		if err != nil {
			_ = Release(env, h.AllocatorAddr, names)
			env.Sleep(bo.Next())
			continue
		}
		h.Processes[i] = Process{Resource: names[0], QServerAddr: addrs[0], JobID: id}
		h.Requeues++
		if o := obs.From(env); o != nil {
			o.EmitCtx(env.Now(), h.Trace, "rmf", "requeue", env.Hostname(),
				obs.Str("lost", p.Resource), obs.Str("to", names[0]), obs.Str("job", id))
			o.Metrics().Counter("rmf.requeues").Add(1)
		}
		bo.Reset()
		return nil
	}
}
