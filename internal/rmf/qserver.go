package rmf

import (
	"fmt"
	"sync"

	"nxcluster/internal/gass"
	"nxcluster/internal/gridftp"
	"nxcluster/internal/nexus"
	"nxcluster/internal/obs"
	"nxcluster/internal/transport"
)

// Q server wire ops.
const (
	opSubmit = int32(10)
	opStatus = int32(11)
)

// jobRecord tracks one submitted process on a Q server.
type jobRecord struct {
	id     string
	state  State
	errMsg string
}

// QServer executes job processes on one computing resource. It corresponds
// to "a server of the Q system runs on every computing resource inside the
// firewall".
type QServer struct {
	// Resource is this resource's name (its host).
	Resource string
	// Cluster labels the resource's cluster for allocation filtering.
	Cluster string
	// CPUs is the advertised processor count.
	CPUs int
	// Registry resolves executable names.
	Registry *Registry

	mu       sync.Mutex
	nextID   int
	jobs     map[string]*jobRecord
	listener transport.Listener
	trace    func(format string, args ...interface{})
}

// NewQServer creates a Q server for a resource.
func NewQServer(resource, cluster string, cpus int, reg *Registry) *QServer {
	return &QServer{
		Resource: resource,
		Cluster:  cluster,
		CPUs:     cpus,
		Registry: reg,
		jobs:     make(map[string]*jobRecord),
	}
}

// SetTrace installs a tracing callback.
func (q *QServer) SetTrace(fn func(string, ...interface{})) { q.trace = fn }

func (q *QServer) tracef(format string, args ...interface{}) {
	if q.trace != nil {
		q.trace(format, args...)
	}
}

// Serve binds the Q server port and also registers with the allocator at
// allocatorAddr (empty to skip); it blocks its process.
func (q *QServer) Serve(env transport.Env, port int, allocatorAddr string, ready func(addr string)) error {
	l, err := env.Listen(port)
	if err != nil {
		return fmt.Errorf("rmf qserver %s: listen: %w", q.Resource, err)
	}
	q.listener = l
	if allocatorAddr != "" {
		if err := RegisterResource(env, allocatorAddr, q.Resource, l.Addr(), q.Cluster, q.CPUs); err != nil {
			_ = l.Close(env)
			return fmt.Errorf("rmf qserver %s: register: %w", q.Resource, err)
		}
	}
	if ready != nil {
		ready(l.Addr())
	}
	for {
		c, err := l.Accept(env)
		if err != nil {
			return nil
		}
		conn := c
		env.SpawnService("qserver:conn", func(e transport.Env) { q.handle(e, conn) })
	}
}

// Close shuts the listener down.
func (q *QServer) Close(env transport.Env) {
	if q.listener != nil {
		_ = q.listener.Close(env)
	}
}

// JobCount reports how many jobs this Q server has accepted.
func (q *QServer) JobCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.jobs)
}

func (q *QServer) handle(env transport.Env, c transport.Conn) {
	defer c.Close(env)
	// Adopt the dialer's trace context from connection baggage so spans the
	// handler (and processes it spawns) open parent under the submitting job.
	obs.SetCtx(env, obs.BaggageOf(c))
	st := transport.Stream{Env: env, Conn: c}
	req, err := nexus.ReadFrame(st, 0)
	if err != nil {
		return
	}
	op, err := req.GetInt32()
	if err != nil {
		return
	}
	resp := nexus.NewBuffer()
	switch op {
	case opSubmit:
		q.handleSubmit(env, req, resp)
	case opStatus:
		id, err := req.GetString()
		if err != nil {
			putErr(resp, err)
			break
		}
		q.mu.Lock()
		rec, ok := q.jobs[id]
		var state State
		var msg string
		if ok {
			state, msg = rec.state, rec.errMsg
		}
		q.mu.Unlock()
		if !ok {
			putErr(resp, fmt.Errorf("%w: %s", ErrUnknownJob, id))
			break
		}
		resp.PutBool(true)
		resp.PutInt32(int32(state))
		resp.PutString(msg)
	default:
		putErr(resp, fmt.Errorf("rmf: unknown qserver op %d", op))
	}
	_ = nexus.WriteFrame(st, resp)
}

// handleSubmit decodes a submission, creates the job process, and replies
// with the job id. "The Q server receives the job request from the Q client
// and creates job processes according to the job type."
func (q *QServer) handleSubmit(env transport.Env, req *nexus.Buffer, resp *nexus.Buffer) {
	executable, e1 := req.GetString()
	nargs, e2 := req.GetInt32()
	if e1 != nil || e2 != nil || nargs < 0 {
		putErr(resp, fmt.Errorf("rmf: malformed submit"))
		return
	}
	args := make([]string, nargs)
	var err error
	for i := range args {
		if args[i], err = req.GetString(); err != nil {
			putErr(resp, err)
			return
		}
	}
	nenv, err := req.GetInt32()
	if err != nil {
		putErr(resp, err)
		return
	}
	envMap := make(map[string]string, nenv)
	for i := int32(0); i < nenv; i++ {
		k, e1 := req.GetString()
		v, e2 := req.GetString()
		if e1 != nil || e2 != nil {
			putErr(resp, fmt.Errorf("rmf: malformed environment"))
			return
		}
		envMap[k] = v
	}
	stdinURL, e1 := req.GetString()
	stdoutURL, e2 := req.GetString()
	if e1 != nil || e2 != nil {
		putErr(resp, fmt.Errorf("rmf: malformed urls"))
		return
	}

	prog, ok := q.Registry.Lookup(executable)
	if !ok {
		putErr(resp, fmt.Errorf("rmf: %s: no such executable %q", q.Resource, executable))
		return
	}
	q.mu.Lock()
	q.nextID++
	id := fmt.Sprintf("%s.%d", q.Resource, q.nextID)
	rec := &jobRecord{id: id, state: StatePending}
	q.jobs[id] = rec
	q.mu.Unlock()
	q.tracef("qserver %s: job %s accepted (%s %v)", q.Resource, id, executable, args)

	// Lifecycle metrics for the monitoring plane: submissions and outcomes
	// as counters, concurrently-active jobs as a gauge. Handles are nil (and
	// every update a no-op) when tracing is off.
	var mActive *obs.Gauge
	var mDone, mFailed *obs.Counter
	parent := obs.CtxOf(env)
	var tcExec obs.TraceContext
	o := obs.From(env)
	if o != nil {
		o.EmitCtx(env.Now(), parent, "rmf", "spawn", q.Resource, obs.Str("job", id), obs.Str("exe", executable))
		// The exec span covers the process's whole server-side life: staging
		// in, the program itself, and staging out.
		tcExec = o.BeginChild(env.Now(), parent, "rmf", "exec", q.Resource, obs.Str("job", id))
		o.Metrics().Counter("rmf." + q.Resource + ".jobs_submitted").Add(1)
		mActive = o.Metrics().Gauge("rmf." + q.Resource + ".jobs_active")
		mDone = o.Metrics().Counter("rmf." + q.Resource + ".jobs_done")
		mFailed = o.Metrics().Counter("rmf." + q.Resource + ".jobs_failed")
	}
	env.Spawn("job:"+id, func(e transport.Env) {
		obs.SetCtx(e, tcExec)
		defer func() { o.EndSpan(e.Now(), tcExec, "rmf", "exec", q.Resource) }()
		ctx := &JobContext{JobID: id, Resource: q.Resource, Args: args, Env: envMap, Trace: tcExec}
		// Stage input via the URL's scheme: GASS for small control files, as
		// the paper's Q system does, or the gridftp bulk data plane
		// (parallel streams, restart markers) for x-gridftp URLs.
		if stdinURL != "" {
			data, err := stageIn(e, stdinURL)
			if err != nil {
				q.finish(rec, fmt.Errorf("stage in: %w", err))
				mFailed.Add(1)
				return
			}
			ctx.Stdin = data
		}
		q.mu.Lock()
		rec.state = StateActive
		q.mu.Unlock()
		mActive.Add(1)
		q.tracef("qserver %s: job %s active", q.Resource, id)
		runErr := prog(e, ctx)
		if stdoutURL != "" {
			if err := stageOut(e, stdoutURL, ctx.Stdout.Bytes()); err != nil && runErr == nil {
				runErr = fmt.Errorf("stage out: %w", err)
			}
		}
		q.finish(rec, runErr)
		mActive.Add(-1)
		if runErr != nil {
			mFailed.Add(1)
		} else {
			mDone.Add(1)
		}
	})
	resp.PutBool(true)
	resp.PutString(id)
}

// stageIn fetches a staging URL by scheme: x-gridftp URLs ride the bulk data
// plane, everything else the GASS file service.
func stageIn(env transport.Env, url string) ([]byte, error) {
	if gridftp.IsURL(url) {
		return gridftp.Fetch(env, url)
	}
	return gass.Fetch(env, url)
}

// stageOut publishes job output to a staging URL by scheme.
func stageOut(env transport.Env, url string, data []byte) error {
	if gridftp.IsURL(url) {
		return gridftp.Publish(env, url, data)
	}
	return gass.Publish(env, url, data)
}

func (q *QServer) finish(rec *jobRecord, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err != nil {
		rec.state = StateFailed
		rec.errMsg = err.Error()
		q.tracef("qserver %s: job %s failed: %v", q.Resource, rec.id, err)
		return
	}
	rec.state = StateDone
	q.tracef("qserver %s: job %s done", q.Resource, rec.id)
}
