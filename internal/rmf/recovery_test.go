package rmf

import (
	"strings"
	"testing"
	"time"

	"nxcluster/internal/hbm"
	"nxcluster/internal/sim"
	"nxcluster/internal/simnet"
	"nxcluster/internal/transport"
)

func TestAllocatorSkipsDownResources(t *testing.T) {
	a := NewAllocator()
	a.Register("q0", "q0:7101", "c", 4)
	a.Register("q1", "q1:7101", "c", 4)

	// Load up q0, then declare it dead: its slots clear and it drops out of
	// selection entirely.
	if _, _, err := a.allocate(2, ""); err != nil {
		t.Fatal(err)
	}
	a.SetHealth("q0", hbm.Down)
	if got := a.Load("q0"); got != 0 {
		t.Fatalf("load after DOWN = %d, want 0", got)
	}
	names, _, err := a.allocate(3, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == "q0" {
			t.Fatalf("allocated on DOWN resource: %v", names)
		}
	}
	if a.Health("q0") != hbm.Down || a.Health("q1") != hbm.Up {
		t.Fatalf("health = %v, %v", a.Health("q0"), a.Health("q1"))
	}
	// LATE is a warning, not a death sentence: still eligible.
	a.SetHealth("q1", hbm.Late)
	if _, _, err := a.allocate(1, ""); err != nil {
		t.Fatalf("LATE resource refused work: %v", err)
	}
	// Recovery: an UP classification restores eligibility with a clean slate.
	a.SetHealth("q0", hbm.Up)
	names, _, err = a.allocate(1, "")
	if err != nil || names[0] != "q0" {
		t.Fatalf("recovered resource not preferred: %v, %v", names, err)
	}
	// Unknown names are ignored, not created.
	a.SetHealth("ghost", hbm.Down)
	if a.Health("ghost") != hbm.Down {
		t.Fatal("unknown resource should read as Down")
	}
}

// TestJobRequeuedAfterQServerCrash runs the full detection-and-recovery
// loop in the simulator: a job lands on q0 (alphabetical tie-break), q0's
// host crashes mid-run, the heartbeat monitor classifies it DOWN, the
// watcher feeds that to the allocator, and the Q client requeues the
// process onto q1 — where it completes.
func TestJobRequeuedAfterQServerCrash(t *testing.T) {
	k := sim.New()
	n := simnet.New(k)
	for _, h := range []string{"mon", "alloc", "q0", "q1", "client"} {
		n.AddHost(h, simnet.HostConfig{})
	}
	n.AddRouter("sw", "")
	lan := simnet.LinkConfig{Latency: time.Millisecond, Bandwidth: 12 << 20}
	for _, h := range []string{"mon", "alloc", "q0", "q1", "client"} {
		n.Connect(h, "sw", lan)
	}

	mon := hbm.NewMonitor(200 * time.Millisecond)
	n.Node("mon").SpawnDaemonOn("monitor", func(e transport.Env) {
		_ = mon.Serve(e, 7300, nil)
	})

	alloc := NewAllocator()
	n.Node("alloc").SpawnDaemonOn("alloc", func(e transport.Env) {
		alloc.WatchHBM(e, "mon:7300", 200*time.Millisecond)
		_ = alloc.Serve(e, AllocatorPort, nil)
	})

	reg := NewRegistry()
	var completedOn []string
	reg.Register("spin", func(env transport.Env, ctx *JobContext) error {
		env.Sleep(2 * time.Second) // long enough to be mid-flight at the crash
		completedOn = append(completedOn, ctx.Resource)
		ctx.Stdout.WriteString("done on " + ctx.Resource)
		return nil
	})
	for _, name := range []string{"q0", "q1"} {
		res := name
		q := NewQServer(res, "c", 4, reg)
		n.Node(res).SpawnDaemonOn("qserver-"+res, func(e transport.Env) {
			e.Sleep(time.Millisecond) // allocator binds first
			_ = q.Serve(e, QServerPort, "alloc:7100", nil)
		})
		rep := &hbm.Reporter{MonitorAddr: "mon:7300", Name: res, Interval: 200 * time.Millisecond}
		n.Node(res).SpawnDaemonOn("reporter-"+res, func(e transport.Env) {
			e.Sleep(2 * time.Millisecond)
			rep.Start(e)
			e.Sleep(time.Hour) // hold the daemon; the reporter beats as a service
		})
	}

	var jobErr error
	var h *JobHandle
	n.Node("client").SpawnOn("qclient", func(e transport.Env) {
		e.Sleep(100 * time.Millisecond)
		var err error
		h, err = SubmitJob(e, "alloc:7100", JobRequest{Count: 1, Spec: ProcessSpec{Executable: "spin"}})
		if err != nil {
			jobErr = err
			return
		}
		if h.Processes[0].Resource != "q0" {
			t.Errorf("job landed on %s, want q0", h.Processes[0].Resource)
		}
		h.Recovery = &RecoveryPolicy{StatusRetries: 3}
		jobErr = h.Wait(e, 100*time.Millisecond, 15*time.Second)
	})
	if err := n.ApplyPlan((&simnet.FaultPlan{}).Crash("q0", time.Second)); err != nil {
		t.Fatal(err)
	}

	// Monitor, reporters and the HBM watcher tick forever: drive to a horizon.
	k.RunUntil(20 * time.Second)
	k.Shutdown()

	if jobErr != nil {
		t.Fatalf("Wait = %v", jobErr)
	}
	if h.Requeues != 1 {
		t.Errorf("requeues = %d, want 1", h.Requeues)
	}
	if len(completedOn) != 1 || completedOn[0] != "q1" {
		t.Errorf("completed on %v, want [q1]", completedOn)
	}
	if alloc.Health("q0") != hbm.Down {
		t.Errorf("allocator view of q0 = %v, want DOWN", alloc.Health("q0"))
	}
	if alloc.Health("q1") != hbm.Up {
		t.Errorf("allocator view of q1 = %v, want UP", alloc.Health("q1"))
	}
}

// TestSubmitRetrySurvivesRestartWindow submits against a Q server that only
// comes up after a delay: the first attempts fail and the backoff carries
// the client into the window where the server is listening.
func TestSubmitRetrySurvivesRestartWindow(t *testing.T) {
	k := sim.New()
	n := simnet.New(k)
	n.AddHost("q", simnet.HostConfig{})
	n.AddHost("client", simnet.HostConfig{})
	n.Connect("q", "client", simnet.LinkConfig{Latency: time.Millisecond})

	reg := NewRegistry()
	reg.Register("noop", func(env transport.Env, ctx *JobContext) error { return nil })
	q := NewQServer("q", "c", 1, reg)
	n.Node("q").SpawnDaemonOn("qserver", func(e transport.Env) {
		e.Sleep(500 * time.Millisecond) // not listening yet: dials are refused
		_ = q.Serve(e, QServerPort, "", nil)
	})

	var id string
	var err error
	n.Node("client").SpawnOn("client", func(e transport.Env) {
		id, err = SubmitRetry(e, "q:7101", ProcessSpec{Executable: "noop"},
			transport.Backoff{Base: 100 * time.Millisecond, Max: time.Second}, 10)
	})
	if rErr := k.Run(); rErr != nil {
		t.Fatal(rErr)
	}
	k.Shutdown()
	if err != nil {
		t.Fatalf("SubmitRetry = %v", err)
	}
	if !strings.HasPrefix(id, "q.") {
		t.Fatalf("job id = %q", id)
	}
}
