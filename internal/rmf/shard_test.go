package rmf

import (
	"testing"
)

// TestShardLeastLoaded: allocation always lands on the host with the lowest
// fractional load, ties to the lowest index — verified against a brute-force
// scan over a mixed-capacity shard through a full fill/drain cycle.
func TestShardLeastLoaded(t *testing.T) {
	cpus := []int32{4, 2, 8, 1, 2}
	s := NewShard(cpus)
	var total int
	for _, c := range cpus {
		total += int(c)
	}

	bruteMin := func(load []int32) int {
		best := -1
		for i := range cpus {
			if load[i] >= cpus[i] {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			li, lb := int64(load[i])*int64(cpus[best]), int64(load[best])*int64(cpus[i])
			if li < lb {
				best = i
			}
		}
		return best
	}

	load := make([]int32, len(cpus))
	var order []int
	for i := 0; i < total; i++ {
		want := bruteMin(load)
		got, ok := s.Allocate()
		if !ok {
			t.Fatalf("Allocate %d: saturated early (running %d)", i, s.Running())
		}
		if got != want {
			t.Fatalf("Allocate %d: got host %d, brute-force says %d (loads %v)", i, got, want, load)
		}
		load[got]++
		order = append(order, got)
	}
	if _, ok := s.Allocate(); ok {
		t.Fatal("Allocate succeeded on a saturated shard")
	}
	if s.Running() != total || s.Free() != 0 {
		t.Fatalf("Running=%d Free=%d, want %d and 0", s.Running(), s.Free(), total)
	}
	// Drain in allocation order; every release must restore allocatability.
	for _, h := range order {
		s.Release(h)
	}
	if s.Running() != 0 || s.Free() != total {
		t.Fatalf("after drain: Running=%d Free=%d", s.Running(), s.Free())
	}
}

// TestShardUniform matches NewUniformShard against NewShard with an
// explicit capacity slice.
func TestShardUniform(t *testing.T) {
	a := NewUniformShard(5, 3)
	b := NewShard([]int32{3, 3, 3, 3, 3})
	for i := 0; i < 15; i++ {
		ha, oka := a.Allocate()
		hb, okb := b.Allocate()
		if ha != hb || oka != okb {
			t.Fatalf("step %d: uniform (%d,%v) vs explicit (%d,%v)", i, ha, oka, hb, okb)
		}
	}
}

// TestShardReleasePanics: releasing an idle host is a contract violation.
func TestShardReleasePanics(t *testing.T) {
	s := NewUniformShard(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release on idle host did not panic")
		}
	}()
	s.Release(0)
}

// TestShardAllocateZeroAlloc is the fleet-scale regression gate mirroring
// the kernel-step alloc tests: the sharded allocate/release path — the
// per-job hot path of every site gateway — must not allocate at all in
// steady state.
func TestShardAllocateZeroAlloc(t *testing.T) {
	s := NewUniformShard(256, 2)
	hosts := make([]int, 0, 512)
	avg := testing.AllocsPerRun(100, func() {
		hosts = hosts[:0]
		for i := 0; i < 300; i++ { // fill past half, interleave releases
			h, ok := s.Allocate()
			if !ok {
				t.Fatal("unexpected saturation")
			}
			hosts = append(hosts, h)
		}
		for _, h := range hosts {
			s.Release(h)
		}
	})
	if avg != 0 {
		t.Fatalf("sharded allocate/release path allocates %.1f allocs/run, want 0", avg)
	}
}

func BenchmarkShardAllocate(b *testing.B) {
	s := NewUniformShard(1024, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h, ok := s.Allocate()
		if !ok {
			b.Fatal("saturated")
		}
		s.Release(h)
	}
}
