package rmf

import (
	"fmt"
	"math"
	"time"

	"nxcluster/internal/nexus"
	"nxcluster/internal/obs"
	"nxcluster/internal/transport"
)

// roundTrip sends one framed request and reads the status-prefixed reply.
func roundTrip(env transport.Env, addr string, req *nexus.Buffer) (*nexus.Buffer, error) {
	c, err := env.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("rmf: dial %s: %w", addr, err)
	}
	defer c.Close(env)
	st := transport.Stream{Env: env, Conn: c}
	if err := nexus.WriteFrame(st, req); err != nil {
		return nil, err
	}
	resp, err := nexus.ReadFrame(st, 0)
	if err != nil {
		return nil, err
	}
	ok, err := resp.GetBool()
	if err != nil {
		return nil, err
	}
	if !ok {
		msg, _ := resp.GetString()
		return nil, fmt.Errorf("rmf: %s: %s", addr, msg)
	}
	return resp, nil
}

// RegisterResource announces a Q server to the allocator.
func RegisterResource(env transport.Env, allocatorAddr, name, addr, cluster string, cpus int) error {
	req := nexus.NewBuffer()
	req.PutInt32(opRegister)
	req.PutString(name)
	req.PutString(addr)
	req.PutString(cluster)
	req.PutInt32(int32(cpus))
	_, err := roundTrip(env, allocatorAddr, req)
	return err
}

// Allocate asks the allocator for count process slots (Figure 2 steps 3-4:
// "the Q client inquires of a resource allocator which resources are best";
// "a resource allocator selects resources and reports their names").
// cluster filters to one cluster ("" = any).
func Allocate(env transport.Env, allocatorAddr string, count int, cluster string) (names, addrs []string, err error) {
	req := nexus.NewBuffer()
	req.PutInt32(opAlloc)
	req.PutInt32(int32(count))
	req.PutString(cluster)
	resp, err := roundTrip(env, allocatorAddr, req)
	if err != nil {
		return nil, nil, err
	}
	n, err := resp.GetInt32()
	if err != nil {
		return nil, nil, err
	}
	for i := int32(0); i < n; i++ {
		name, e1 := resp.GetString()
		addr, e2 := resp.GetString()
		if e1 != nil || e2 != nil {
			return nil, nil, fmt.Errorf("rmf: malformed alloc reply")
		}
		names = append(names, name)
		addrs = append(addrs, addr)
	}
	return names, addrs, nil
}

// Release returns allocated slots.
func Release(env transport.Env, allocatorAddr string, names []string) error {
	req := nexus.NewBuffer()
	req.PutInt32(opRelease)
	req.PutInt32(int32(len(names)))
	for _, n := range names {
		req.PutString(n)
	}
	_, err := roundTrip(env, allocatorAddr, req)
	return err
}

// ProcessSpec describes one job process to run.
type ProcessSpec struct {
	// Executable is the registered program name.
	Executable string
	// Args are program arguments.
	Args []string
	// Env carries environment variables.
	Env map[string]string
	// StdinURL optionally stages an input file (x-gass URL, or x-gridftp
	// for bulk transfers over the parallel-stream data plane).
	StdinURL string
	// StdoutURL optionally receives the output (x-gass or x-gridftp URL).
	StdoutURL string
}

// Submit sends one process to a Q server (Figure 2 step 5) and returns the
// job id.
func Submit(env transport.Env, qserverAddr string, spec ProcessSpec) (string, error) {
	req := nexus.NewBuffer()
	req.PutInt32(opSubmit)
	req.PutString(spec.Executable)
	req.PutInt32(int32(len(spec.Args)))
	for _, a := range spec.Args {
		req.PutString(a)
	}
	req.PutInt32(int32(len(spec.Env)))
	for k, v := range spec.Env {
		req.PutString(k)
		req.PutString(v)
	}
	req.PutString(spec.StdinURL)
	req.PutString(spec.StdoutURL)
	resp, err := roundTrip(env, qserverAddr, req)
	if err != nil {
		return "", err
	}
	return resp.GetString()
}

// Status queries one job's state.
func Status(env transport.Env, qserverAddr, jobID string) (State, string, error) {
	req := nexus.NewBuffer()
	req.PutInt32(opStatus)
	req.PutString(jobID)
	resp, err := roundTrip(env, qserverAddr, req)
	if err != nil {
		return StateFailed, "", err
	}
	s, err := resp.GetInt32()
	if err != nil {
		return StateFailed, "", err
	}
	msg, err := resp.GetString()
	if err != nil {
		return StateFailed, "", err
	}
	return State(s), msg, nil
}

// Process is one submitted process of a job.
type Process struct {
	// Resource is the executing resource's name.
	Resource string
	// QServerAddr is its Q server address.
	QServerAddr string
	// JobID is the Q server's id for this process.
	JobID string
}

// JobHandle tracks a multi-process RMF job.
type JobHandle struct {
	// AllocatorAddr is where slots were allocated.
	AllocatorAddr string
	// Processes are the submitted processes.
	Processes []Process
	// Cluster is the allocation filter the job was submitted with.
	Cluster string
	// Specs holds each process's submitted spec so a lost process can be
	// requeued verbatim.
	Specs []ProcessSpec
	// Recovery, when non-nil, makes Wait requeue processes lost to Q server
	// failures instead of reporting them as errors.
	Recovery *RecoveryPolicy
	// Requeues counts processes recovered onto replacement resources.
	Requeues int
	// Speculations counts speculative duplicates launched by Wait under a
	// RecoveryPolicy with SpeculateAfter set.
	Speculations int
	// Trace is the job's root trace context, minted by SubmitJob when an
	// observer is attached (zero otherwise). Allocation, per-process
	// submission, server-side execution and staging all parent under it;
	// Wait closes the root span when the job reaches a terminal state.
	Trace    obs.TraceContext
	released bool
}

// JobRequest is a whole-job submission: count processes of one spec.
type JobRequest struct {
	// Count is the number of processes.
	Count int
	// Cluster restricts allocation ("" = any).
	Cluster string
	// Spec is the per-process specification. StdoutURL, when set, receives
	// a "#<index>" suffix per process so outputs do not collide.
	Spec ProcessSpec
}

// SubmitJob runs the Q client side of Figure 2: allocate resources, then
// submit each process to its Q server.
func SubmitJob(env transport.Env, allocatorAddr string, req JobRequest) (*JobHandle, error) {
	if req.Count <= 0 {
		return nil, fmt.Errorf("rmf: job count must be positive")
	}
	o := obs.From(env)
	// The job is a traced unit: a trace tree roots here — or joins the
	// caller's, when a gatekeeper job manager already carries one — and the
	// allocate and per-process submit legs run with the matching context
	// installed as the process's ambient, so their dials — and, through
	// connection baggage, the Q server's execution and staging spans —
	// parent under it. The saved context is restored on return; with no
	// observer every context is zero and nothing changes.
	root := o.BeginSpan(env.Now(), obs.CtxOf(env), "rmf", "job", env.Hostname(),
		obs.Int("count", int64(req.Count)), obs.Str("cluster", req.Cluster))
	saved := obs.CtxOf(env)
	defer obs.SetCtx(env, saved)
	if o != nil {
		o.EmitCtx(env.Now(), root, "rmf", "submit", env.Hostname(), obs.Int("count", int64(req.Count)), obs.Str("cluster", req.Cluster))
	}
	tcAlloc := o.BeginChild(env.Now(), root, "rmf", "allocate", env.Hostname())
	obs.SetCtx(env, tcAlloc)
	names, addrs, err := Allocate(env, allocatorAddr, req.Count, req.Cluster)
	o.EndSpan(env.Now(), tcAlloc, "rmf", "allocate", env.Hostname(), obs.Int("granted", int64(len(names))))
	if err != nil {
		o.EndSpan(env.Now(), root, "rmf", "job", env.Hostname(), obs.Str("err", "allocate"))
		return nil, err
	}
	if o != nil {
		for _, n := range names {
			o.EmitCtx(env.Now(), tcAlloc, "rmf", "allocate", env.Hostname(), obs.Str("resource", n))
		}
	}
	h := &JobHandle{AllocatorAddr: allocatorAddr, Cluster: req.Cluster, Trace: root}
	for i := range names {
		spec := req.Spec
		if spec.StdoutURL != "" && req.Count > 1 {
			spec.StdoutURL = fmt.Sprintf("%s#%d", spec.StdoutURL, i)
		}
		tcSub := o.BeginChild(env.Now(), root, "rmf", "submit-proc", env.Hostname(), obs.Str("resource", names[i]))
		obs.SetCtx(env, tcSub)
		id, err := Submit(env, addrs[i], spec)
		o.EndSpan(env.Now(), tcSub, "rmf", "submit-proc", env.Hostname())
		if err != nil {
			// Best-effort cleanup of already-claimed slots.
			_ = Release(env, allocatorAddr, names)
			o.EndSpan(env.Now(), root, "rmf", "job", env.Hostname(), obs.Str("err", "submit"))
			return nil, fmt.Errorf("rmf: submit to %s: %w", names[i], err)
		}
		h.Processes = append(h.Processes, Process{Resource: names[i], QServerAddr: addrs[i], JobID: id})
		h.Specs = append(h.Specs, spec)
	}
	return h, nil
}

// Wait polls until every process reaches a terminal state or the timeout
// expires, then releases the allocation. It returns the first failure.
//
// With a RecoveryPolicy set, a process whose Q server stops answering —
// crashed host, restarted daemon that forgot the job id — is requeued onto a
// fresh slot instead of failing the job (see RecoveryPolicy for semantics).
func (h *JobHandle) Wait(env transport.Env, poll, timeout time.Duration) error {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	deadline := env.Now() + timeout
	if timeout <= 0 {
		deadline = time.Duration(math.MaxInt64)
	}
	statusRetries := 0
	var bo transport.Backoff
	if h.Recovery != nil {
		statusRetries = h.Recovery.StatusRetries
		if statusRetries <= 0 {
			statusRetries = 3
		}
		bo = h.Recovery.Backoff
		if bo.Key == "" {
			bo.Key = "rmf-requeue@" + h.AllocatorAddr
		}
		if bo.Rand == nil {
			bo.Rand = transport.RandOf(env)
		}
	}
	speculateAfter := time.Duration(0)
	if h.Recovery != nil {
		speculateAfter = h.Recovery.SpeculateAfter
	}
	o := obs.From(env)
	var firstErr error
	for i := range h.Processes {
		errStreak := 0
		specStreak := 0
		var spec *Process // in-flight speculative duplicate, if any
		procStart := env.Now()
		for {
			p := h.Processes[i]
			state, msg, err := Status(env, p.QServerAddr, p.JobID)
			if err != nil {
				errStreak++
				if h.Recovery == nil {
					firstErr = err
					break
				}
				if errStreak >= statusRetries {
					if spec != nil {
						// The primary is lost but a speculative copy is in
						// flight: promote the copy instead of requeueing.
						_ = Release(env, h.AllocatorAddr, []string{p.Resource})
						h.Processes[i] = *spec
						spec = nil
						errStreak = 0
						procStart = env.Now()
						if o != nil {
							o.EmitCtx(env.Now(), h.Trace, "rmf", "spec-promote", env.Hostname(),
								obs.Str("lost", p.Resource), obs.Str("to", h.Processes[i].Resource))
						}
						env.Sleep(poll)
						continue
					}
					// The Q server is gone or lost the job: requeue.
					if rqErr := h.requeue(env, i, deadline, &bo); rqErr != nil {
						if firstErr == nil {
							firstErr = rqErr
						}
						break
					}
					errStreak = 0
					procStart = env.Now()
				}
				env.Sleep(poll)
				continue
			}
			errStreak = 0
			if state == StateDone {
				if o != nil {
					o.EmitCtx(env.Now(), h.Trace, "rmf", "exit", env.Hostname(), obs.Str("job", p.JobID), obs.Str("resource", p.Resource))
				}
				break
			}
			if state == StateFailed {
				if o != nil {
					o.EmitCtx(env.Now(), h.Trace, "rmf", "failed", env.Hostname(), obs.Str("job", p.JobID), obs.Str("resource", p.Resource))
				}
				if firstErr == nil {
					firstErr = fmt.Errorf("rmf: job %s on %s failed: %s", p.JobID, p.Resource, msg)
				}
				break
			}
			if timeout > 0 && env.Now() > deadline {
				if firstErr == nil {
					firstErr = fmt.Errorf("rmf: job %s on %s timed out in state %s", p.JobID, p.Resource, state)
				}
				break
			}
			if spec != nil {
				sstate, _, serr := Status(env, spec.QServerAddr, spec.JobID)
				if serr != nil {
					specStreak++
					if specStreak >= statusRetries {
						// The copy's resource died too; drop it. The progress
						// deadline is still past, so a fresh copy launches on
						// the next poll.
						_ = Release(env, h.AllocatorAddr, []string{spec.Resource})
						spec = nil
						specStreak = 0
					}
				} else {
					specStreak = 0
					if sstate == StateDone {
						// First completion wins: the copy beat the primary.
						// Swap it in and release the loser's slot — the loser
						// may still run to completion on its Q server
						// (at-least-once), but only the winner's result is
						// consumed.
						_ = Release(env, h.AllocatorAddr, []string{p.Resource})
						h.Processes[i] = *spec
						spec = nil
						if o != nil {
							o.EmitCtx(env.Now(), h.Trace, "rmf", "exit", env.Hostname(),
								obs.Str("job", h.Processes[i].JobID), obs.Str("resource", h.Processes[i].Resource))
						}
						break
					}
					if sstate == StateFailed {
						_ = Release(env, h.AllocatorAddr, []string{spec.Resource})
						spec = nil
					}
				}
			} else if speculateAfter > 0 && env.Now()-procStart >= speculateAfter {
				spec = h.speculate(env, i, o)
			}
			env.Sleep(poll)
		}
		if spec != nil {
			// The primary reached a terminal state with a copy still in
			// flight: release the copy's slot.
			_ = Release(env, h.AllocatorAddr, []string{spec.Resource})
		}
	}
	h.ReleaseSlots(env)
	return firstErr
}

// speculate launches one duplicate of process i on a fresh slot. The
// allocator's load- and health-aware sort steers the copy away from the
// straggler, which still holds its own slot. Best-effort by design: a copy
// that cannot be placed or submitted is skipped, and since the progress
// deadline stays expired, Wait simply tries again on a later poll.
func (h *JobHandle) speculate(env transport.Env, i int, o *obs.Observer) *Process {
	names, addrs, err := Allocate(env, h.AllocatorAddr, 1, h.Cluster)
	if err != nil {
		return nil
	}
	id, err := Submit(env, addrs[0], h.Specs[i])
	if err != nil {
		_ = Release(env, h.AllocatorAddr, names)
		return nil
	}
	h.Speculations++
	if o != nil {
		o.EmitCtx(env.Now(), h.Trace, "rmf", "speculate", env.Hostname(),
			obs.Str("slow", h.Processes[i].Resource), obs.Str("copy", names[0]), obs.Str("job", id))
		o.Metrics().Counter("rmf.speculations").Add(1)
	}
	return &Process{Resource: names[0], QServerAddr: addrs[0], JobID: id}
}

// ReleaseSlots returns the job's allocator slots (idempotent). It also
// closes the job's root trace span: releasing is the terminal client-side
// operation, so the span covers submit through release.
func (h *JobHandle) ReleaseSlots(env transport.Env) {
	if h.released {
		return
	}
	h.released = true
	obs.From(env).EndSpan(env.Now(), h.Trace, "rmf", "job", env.Hostname())
	names := make([]string, len(h.Processes))
	for i, p := range h.Processes {
		names[i] = p.Resource
	}
	_ = Release(env, h.AllocatorAddr, names)
}
