// Package rmf implements RMF, the paper's Resource Manager beyond the
// Firewall (its reference [9], described in section 2): a job queuing
// system in the mold of LSF that can drive computing resources inside a
// firewall from a Globus gatekeeper running outside it.
//
// Three roles cooperate (paper Figure 2):
//
//   - a Q server runs on every computing resource inside the firewall and
//     executes submitted job processes;
//   - a resource allocator daemon runs inside the firewall, tracks the
//     resources, and selects the best ones for each request;
//   - a Q client is created by the job manager (outside the firewall, next
//     to the gatekeeper); it asks the allocator for resources and submits
//     the job to the chosen Q servers.
//
// The site firewall must permit the Q client's connections to the allocator
// and the Q servers — the paper calls this configuration out explicitly —
// which cluster.Testbed models by opening those registered ports.
//
// Because jobs in the simulation cannot be exec'ed binaries, a Registry maps
// executable names to Go functions; file input/output is staged through
// GASS URLs exactly as the paper describes.
package rmf

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"nxcluster/internal/hbm"
	"nxcluster/internal/mds"
	"nxcluster/internal/nexus"
	"nxcluster/internal/obs"
	"nxcluster/internal/transport"
)

// Well-known ports inside the site (must be opened on the firewall for the
// Q client, per the paper).
const (
	// AllocatorPort is the resource allocator's port.
	AllocatorPort = 7100
	// QServerPort is every Q server's port.
	QServerPort = 7101
)

// ErrNoResources is returned when the allocator cannot satisfy a request.
var ErrNoResources = errors.New("rmf: no resources available")

// ErrUnknownJob is returned for status queries on unknown job ids.
var ErrUnknownJob = errors.New("rmf: unknown job")

// State is a job's lifecycle state.
type State int

// Job states.
const (
	StatePending State = iota
	StateActive
	StateDone
	StateFailed
)

// String renders the state.
func (s State) String() string {
	switch s {
	case StatePending:
		return "PENDING"
	case StateActive:
		return "ACTIVE"
	case StateDone:
		return "DONE"
	default:
		return "FAILED"
	}
}

// JobContext is what a program receives when executed by a Q server.
type JobContext struct {
	// JobID is the Q server's identifier for this process.
	JobID string
	// Resource is the executing resource's name.
	Resource string
	// Args are the program arguments.
	Args []string
	// Env carries environment variables from the RSL (e.g. the Nexus Proxy
	// configuration).
	Env map[string]string
	// Stdin holds staged input file contents (empty if none).
	Stdin []byte
	// Stdout collects the program's output; the Q server publishes it to
	// the job's stdout URL on completion.
	Stdout bytes.Buffer
	// Trace is the exec span the Q server opened for this process (zero when
	// tracing is off or the submitter was untraced). Programs that open spans
	// of their own should parent them here.
	Trace obs.TraceContext
}

// Program is a simulated executable.
type Program func(env transport.Env, ctx *JobContext) error

// Registry maps executable names to programs.
type Registry struct {
	mu       sync.Mutex
	programs map[string]Program
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{programs: make(map[string]Program)} }

// Register binds an executable name.
func (r *Registry) Register(name string, p Program) {
	r.mu.Lock()
	r.programs[name] = p
	r.mu.Unlock()
}

// Lookup finds a program.
func (r *Registry) Lookup(name string) (Program, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.programs[name]
	return p, ok
}

// resourceInfo is the allocator's view of one Q server.
type resourceInfo struct {
	Name    string
	Addr    string // Q server "host:port"
	Cluster string
	CPUs    int
	Load    int        // outstanding allocated slots
	Health  hbm.Health // zero value Up: resources are eligible until proven dead
}

// Allocator is the resource allocator daemon.
type Allocator struct {
	mu        sync.Mutex
	resources map[string]*resourceInfo
	listener  transport.Listener
	trace     func(format string, args ...interface{})

	// mdsAddr and mdsBase, when set, make the allocator publish every
	// registered resource into the Grid Information Service so other tools
	// can discover the site's capacity (the Globus GRAM reporter role).
	mdsAddr string
	mdsBase string
	mdsErrs int
}

// NewAllocator creates an empty allocator.
func NewAllocator() *Allocator {
	return &Allocator{resources: make(map[string]*resourceInfo)}
}

// SetTrace installs a tracing callback (used by the Figure 2 renderer).
func (a *Allocator) SetTrace(fn func(string, ...interface{})) { a.trace = fn }

// PublishTo makes the allocator mirror its resource table into the MDS at
// addr, under base (e.g. "ou=rwcp, o=grid"). Entries are written on
// registration and their load attribute updated on allocate/release.
func (a *Allocator) PublishTo(addr, base string) {
	a.mdsAddr, a.mdsBase = addr, base
}

// MDSErrors reports how many MDS publications failed (publishing is
// best-effort; allocation never blocks on the directory).
func (a *Allocator) MDSErrors() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.mdsErrs
}

// publish mirrors one resource into the MDS from a fresh process so a slow
// or absent directory never stalls the allocator protocol.
func (a *Allocator) publish(env transport.Env, r resourceInfo) {
	if a.mdsAddr == "" {
		return
	}
	addr, base := a.mdsAddr, a.mdsBase
	env.SpawnService("rmf-alloc:mds", func(e transport.Env) {
		dn := fmt.Sprintf("hn=%s, %s", r.Name, base)
		err := mds.Client{Addr: addr}.Add(e, dn, map[string][]string{
			"objectclass": {"resource"},
			"cluster":     {r.Cluster},
			"qserveraddr": {r.Addr},
			"cpus":        {strconv.Itoa(r.CPUs)},
			"load":        {strconv.Itoa(r.Load)},
		})
		if err != nil {
			a.mu.Lock()
			a.mdsErrs++
			a.mu.Unlock()
			a.tracef("allocator: mds publish %s failed: %v", r.Name, err)
		}
	})
}

func (a *Allocator) tracef(format string, args ...interface{}) {
	if a.trace != nil {
		a.trace(format, args...)
	}
}

// Register adds or updates a resource.
func (a *Allocator) Register(name, addr, cluster string, cpus int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r, ok := a.resources[name]; ok {
		r.Addr, r.Cluster, r.CPUs = addr, cluster, cpus
		return
	}
	a.resources[name] = &resourceInfo{Name: name, Addr: addr, Cluster: cluster, CPUs: cpus}
}

// Resources lists registered resource names, sorted.
func (a *Allocator) Resources() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []string
	for n := range a.resources {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// allocate selects count slots, least-loaded resources first (ties by
// name), incrementing their load. It returns one Q server address per slot.
func (a *Allocator) allocate(count int, cluster string) ([]string, []string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var cands []*resourceInfo
	for _, r := range a.resources {
		if cluster != "" && r.Cluster != cluster {
			continue
		}
		if r.Health == hbm.Down {
			continue // the heartbeat monitor declared it dead
		}
		cands = append(cands, r)
	}
	if len(cands) == 0 {
		return nil, nil, ErrNoResources
	}
	var names, addrs []string
	for i := 0; i < count; i++ {
		sort.Slice(cands, func(x, y int) bool {
			// SUSPECT (degraded) resources remain usable but rank behind
			// every healthy one — a straggler only gets work when nothing
			// else has capacity.
			sx, sy := cands[x].Health == hbm.Suspect, cands[y].Health == hbm.Suspect
			if sx != sy {
				return sy
			}
			// Fractional load balances heterogeneous CPU counts.
			lx := float64(cands[x].Load) / float64(cands[x].CPUs)
			ly := float64(cands[y].Load) / float64(cands[y].CPUs)
			if lx != ly {
				return lx < ly
			}
			return cands[x].Name < cands[y].Name
		})
		pick := cands[0]
		pick.Load++
		names = append(names, pick.Name)
		addrs = append(addrs, pick.Addr)
	}
	return names, addrs, nil
}

// release returns slots to resources.
func (a *Allocator) release(names []string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, n := range names {
		if r, ok := a.resources[n]; ok && r.Load > 0 {
			r.Load--
		}
	}
}

// Load reports a resource's outstanding slot count.
func (a *Allocator) Load(name string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r, ok := a.resources[name]; ok {
		return r.Load
	}
	return -1
}

// publishLoads refreshes the load attribute of the named resources in the
// MDS, deduplicated, best-effort.
func (a *Allocator) publishLoads(env transport.Env, names []string) {
	if a.mdsAddr == "" {
		return
	}
	seen := map[string]bool{}
	a.mu.Lock()
	var snaps []resourceInfo
	for _, n := range names {
		if seen[n] {
			continue
		}
		seen[n] = true
		if r, ok := a.resources[n]; ok {
			snaps = append(snaps, *r)
		}
	}
	a.mu.Unlock()
	addr, base := a.mdsAddr, a.mdsBase
	for _, r := range snaps {
		r := r
		env.SpawnService("rmf-alloc:mds", func(e transport.Env) {
			dn := fmt.Sprintf("hn=%s, %s", r.Name, base)
			err := mds.Client{Addr: addr}.Modify(e, dn, map[string][]string{
				"load": {strconv.Itoa(r.Load)},
			})
			if err != nil {
				a.mu.Lock()
				a.mdsErrs++
				a.mu.Unlock()
			}
		})
	}
}

// Allocator wire ops.
const (
	opRegister = int32(1)
	opAlloc    = int32(2)
	opRelease  = int32(3)
)

// Serve runs the allocator protocol; it blocks its process.
func (a *Allocator) Serve(env transport.Env, port int, ready func(addr string)) error {
	l, err := env.Listen(port)
	if err != nil {
		return fmt.Errorf("rmf allocator: listen: %w", err)
	}
	a.listener = l
	if ready != nil {
		ready(l.Addr())
	}
	for {
		c, err := l.Accept(env)
		if err != nil {
			return nil
		}
		conn := c
		env.SpawnService("rmf-alloc:conn", func(e transport.Env) { a.handle(e, conn) })
	}
}

// Close shuts the listener down.
func (a *Allocator) Close(env transport.Env) {
	if a.listener != nil {
		_ = a.listener.Close(env)
	}
}

// noteLoads refreshes the per-resource load gauges the monitoring plane
// samples, after an allocate or release touched names. No-op when tracing
// is off.
func (a *Allocator) noteLoads(o *obs.Observer, names []string) {
	if o == nil {
		return
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			continue
		}
		seen[n] = true
		if l := a.Load(n); l >= 0 {
			o.Metrics().Gauge("rmf.load." + n).Set(int64(l))
		}
	}
}

func (a *Allocator) handle(env transport.Env, c transport.Conn) {
	defer c.Close(env)
	o := obs.From(env)
	st := transport.Stream{Env: env, Conn: c}
	req, err := nexus.ReadFrame(st, 0)
	if err != nil {
		return
	}
	op, err := req.GetInt32()
	if err != nil {
		return
	}
	resp := nexus.NewBuffer()
	switch op {
	case opRegister:
		name, e1 := req.GetString()
		addr, e2 := req.GetString()
		cluster, e3 := req.GetString()
		cpus, e4 := req.GetInt32()
		if e1 != nil || e2 != nil || e3 != nil || e4 != nil {
			putErr(resp, fmt.Errorf("rmf: malformed register"))
			break
		}
		a.Register(name, addr, cluster, int(cpus))
		a.tracef("allocator: registered %s (%s, %d cpus) at %s", name, cluster, cpus, addr)
		a.publish(env, resourceInfo{Name: name, Addr: addr, Cluster: cluster, CPUs: int(cpus)})
		resp.PutBool(true)
	case opAlloc:
		count, e1 := req.GetInt32()
		cluster, e2 := req.GetString()
		if e1 != nil || e2 != nil || count <= 0 {
			putErr(resp, fmt.Errorf("rmf: malformed alloc"))
			break
		}
		if o != nil {
			o.Metrics().Counter("rmf.alloc.requests").Add(1)
		}
		names, addrs, err := a.allocate(int(count), cluster)
		if err != nil {
			putErr(resp, err)
			break
		}
		a.tracef("allocator: selected %v for %d-process request", names, count)
		a.publishLoads(env, names)
		a.noteLoads(o, names)
		resp.PutBool(true)
		resp.PutInt32(int32(len(names)))
		for i := range names {
			resp.PutString(names[i])
			resp.PutString(addrs[i])
		}
	case opRelease:
		n, err := req.GetInt32()
		if err != nil {
			putErr(resp, err)
			break
		}
		names := make([]string, n)
		for i := range names {
			if names[i], err = req.GetString(); err != nil {
				putErr(resp, err)
				break
			}
		}
		if err == nil {
			a.release(names)
			a.publishLoads(env, names)
			a.noteLoads(o, names)
			resp.PutBool(true)
		}
	default:
		putErr(resp, fmt.Errorf("rmf: unknown allocator op %d", op))
	}
	_ = nexus.WriteFrame(st, resp)
}

func putErr(b *nexus.Buffer, err error) {
	b.PutBool(false)
	b.PutString(err.Error())
}
