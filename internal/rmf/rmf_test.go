package rmf

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"nxcluster/internal/firewall"
	"nxcluster/internal/gass"
	"nxcluster/internal/gridftp"
	"nxcluster/internal/mds"
	"nxcluster/internal/proxy"
	"nxcluster/internal/sim"
	"nxcluster/internal/simnet"
	"nxcluster/internal/transport"
)

func TestAllocatorSelection(t *testing.T) {
	a := NewAllocator()
	a.Register("rwcp-sun", "rwcp-sun:7101", "rwcp", 4)
	a.Register("compas00", "compas00:7101", "compas", 1)
	a.Register("compas01", "compas01:7101", "compas", 1)

	// Least fractional load first; ties by name.
	names, addrs, err := a.allocate(3, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || len(addrs) != 3 {
		t.Fatalf("allocate = %v", names)
	}
	// First three slots spread across all empty resources.
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	if len(seen) != 3 {
		t.Fatalf("slots not spread: %v", names)
	}
	// The 4-CPU host absorbs subsequent load before 1-CPU hosts double up.
	more, _, err := a.allocate(2, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range more {
		if n != "rwcp-sun" {
			t.Fatalf("expected rwcp-sun to absorb load, got %v", more)
		}
	}
	if a.Load("rwcp-sun") != 3 {
		t.Fatalf("load = %d", a.Load("rwcp-sun"))
	}
	a.release([]string{"rwcp-sun", "rwcp-sun"})
	if a.Load("rwcp-sun") != 1 {
		t.Fatalf("load after release = %d", a.Load("rwcp-sun"))
	}
}

func TestAllocatorClusterFilterAndEmpty(t *testing.T) {
	a := NewAllocator()
	a.Register("etl-o2k", "etl-o2k:7101", "etl", 16)
	if _, _, err := a.allocate(1, "rwcp"); !errors.Is(err, ErrNoResources) {
		t.Fatalf("filtered allocate = %v", err)
	}
	names, _, err := a.allocate(2, "etl")
	if err != nil || len(names) != 2 {
		t.Fatalf("allocate etl = %v, %v", names, err)
	}
	if a.Load("missing") != -1 {
		t.Fatal("Load(missing) != -1")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Lookup("nope"); ok {
		t.Fatal("empty registry found a program")
	}
	r.Register("hello", func(env transport.Env, ctx *JobContext) error { return nil })
	if _, ok := r.Lookup("hello"); !ok {
		t.Fatal("registered program missing")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StatePending: "PENDING", StateActive: "ACTIVE", StateDone: "DONE", StateFailed: "FAILED",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %s", s, s.String())
		}
	}
}

// startRMFTCP boots an allocator plus two Q servers on loopback TCP.
func startRMFTCP(t *testing.T, reg *Registry) (env *transport.TCPEnv, allocAddr string, qAddrs []string) {
	t.Helper()
	env = transport.NewTCPEnv("localhost")
	alloc := NewAllocator()
	ready := make(chan string, 1)
	env.Spawn("alloc", func(e transport.Env) {
		_ = alloc.Serve(e, 0, func(a string) { ready <- a })
	})
	allocAddr = <-ready
	t.Cleanup(func() { alloc.Close(env) })
	for i := 0; i < 2; i++ {
		q := NewQServer(fmt.Sprintf("node%d", i), "test", 2, reg)
		qr := make(chan string, 1)
		env.Spawn("qserver", func(e transport.Env) {
			_ = q.Serve(e, 0, allocAddr, func(a string) { qr <- a })
		})
		qAddrs = append(qAddrs, <-qr)
		qq := q
		t.Cleanup(func() { qq.Close(env) })
	}
	return env, allocAddr, qAddrs
}

func TestSubmitJobEndToEndTCP(t *testing.T) {
	reg := NewRegistry()
	reg.Register("greet", func(env transport.Env, ctx *JobContext) error {
		fmt.Fprintf(&ctx.Stdout, "hello %s from %s (stdin=%q, PROXY=%s)",
			strings.Join(ctx.Args, ","), ctx.Resource, ctx.Stdin, ctx.Env["PROXY"])
		return nil
	})
	env, allocAddr, _ := startRMFTCP(t, reg)

	// GASS server for staging.
	store := gass.NewStore()
	gsrv := gass.NewServer(store)
	gready := make(chan string, 1)
	env.Spawn("gass", func(e transport.Env) {
		_ = gsrv.Serve(e, 0, func(a string) { gready <- a })
	})
	gaddr := <-gready
	defer gsrv.Close(env)
	store.Put("/in", []byte("input-bytes"))

	h, err := SubmitJob(env, allocAddr, JobRequest{
		Count: 2,
		Spec: ProcessSpec{
			Executable: "greet",
			Args:       []string{"a", "b"},
			Env:        map[string]string{"PROXY": "outer:7000"},
			StdinURL:   gass.URL(gaddr, "/in"),
			StdoutURL:  gass.URL(gaddr, "/out"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Processes) != 2 {
		t.Fatalf("%d processes", len(h.Processes))
	}
	if err := h.Wait(env, 10*time.Millisecond, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Outputs staged out with per-process suffixes.
	for i := 0; i < 2; i++ {
		out, err := store.Get(fmt.Sprintf("/out#%d", i))
		if err != nil {
			t.Fatalf("stdout %d: %v", i, err)
		}
		s := string(out)
		if !strings.Contains(s, "hello a,b") || !strings.Contains(s, `stdin="input-bytes"`) ||
			!strings.Contains(s, "PROXY=outer:7000") {
			t.Fatalf("stdout %d = %q", i, s)
		}
	}
}

// TestSubmitJobGridFTPStaging stages a bulk input in and the output out over
// the gridftp data plane instead of GASS, selected purely by URL scheme.
func TestSubmitJobGridFTPStaging(t *testing.T) {
	reg := NewRegistry()
	reg.Register("bulk", func(env transport.Env, ctx *JobContext) error {
		fmt.Fprintf(&ctx.Stdout, "got %d bytes", len(ctx.Stdin))
		ctx.Stdout.Write(ctx.Stdin[:16])
		return nil
	})
	env, allocAddr, _ := startRMFTCP(t, reg)

	store := gass.NewStore()
	gsrv := gridftp.NewServer(store, proxy.Dialer{})
	gready := make(chan string, 1)
	env.Spawn("gridftp", func(e transport.Env) {
		_ = gsrv.Serve(e, 0, func(a string) { gready <- a })
	})
	gaddr := <-gready
	defer gsrv.Close(env)
	input := make([]byte, 200<<10)
	for i := range input {
		input[i] = byte(i * 3)
	}
	store.Put("/bulk/in", input)

	h, err := SubmitJob(env, allocAddr, JobRequest{
		Count: 1,
		Spec: ProcessSpec{
			Executable: "bulk",
			StdinURL:   gridftp.URL(gaddr, "/bulk/in"),
			StdoutURL:  gridftp.URL(gaddr, "/bulk/out"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(env, 10*time.Millisecond, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	out, err := store.Get("/bulk/out")
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("got %d bytes", len(input))
	if !strings.HasPrefix(string(out), want) {
		t.Fatalf("stdout = %q", out)
	}
}

func TestSubmitUnknownExecutable(t *testing.T) {
	env, allocAddr, _ := startRMFTCP(t, NewRegistry())
	_, err := SubmitJob(env, allocAddr, JobRequest{Count: 1, Spec: ProcessSpec{Executable: "missing"}})
	if err == nil || !strings.Contains(err.Error(), "no such executable") {
		t.Fatalf("err = %v", err)
	}
}

func TestFailedProgramReportsFailure(t *testing.T) {
	reg := NewRegistry()
	reg.Register("boom", func(env transport.Env, ctx *JobContext) error {
		return errors.New("segfault (simulated)")
	})
	env, allocAddr, _ := startRMFTCP(t, reg)
	h, err := SubmitJob(env, allocAddr, JobRequest{Count: 1, Spec: ProcessSpec{Executable: "boom"}})
	if err != nil {
		t.Fatal(err)
	}
	err = h.Wait(env, 10*time.Millisecond, 5*time.Second)
	if err == nil || !strings.Contains(err.Error(), "segfault") {
		t.Fatalf("Wait = %v, want failure", err)
	}
}

func TestStatusUnknownJob(t *testing.T) {
	env, _, qAddrs := startRMFTCP(t, NewRegistry())
	if _, _, err := Status(env, qAddrs[0], "node0.999"); err == nil {
		t.Fatal("unknown job id accepted")
	}
}

// TestRMFBeyondFirewallInSim reproduces the paper's deployment shape: the Q
// client runs outside the firewall (on the gatekeeper host) and reaches the
// allocator and Q servers inside only because the firewall opens their
// registered ports.
func TestRMFBeyondFirewallInSim(t *testing.T) {
	k := sim.New()
	n := simnet.New(k)
	n.AddHost("gatekeeper", simnet.HostConfig{})
	n.AddHost("allocator", simnet.HostConfig{Site: "rwcp"})
	n.AddHost("node0", simnet.HostConfig{Site: "rwcp"})
	lan := simnet.LinkConfig{Latency: 200 * time.Microsecond, Bandwidth: 12 << 20}
	n.Connect("gatekeeper", "allocator", lan)
	n.Connect("allocator", "node0", lan)
	fw := firewall.New("rwcp")
	fw.AllowIncomingPort(AllocatorPort, "RMF: Q client -> allocator")
	fw.AllowIncomingPort(QServerPort, "RMF: Q client -> Q server")
	n.SetFirewall("rwcp", fw)

	reg := NewRegistry()
	ran := false
	reg.Register("touch", func(env transport.Env, ctx *JobContext) error {
		ran = true
		return nil
	})
	alloc := NewAllocator()
	n.Node("allocator").SpawnDaemonOn("alloc", func(e transport.Env) {
		_ = alloc.Serve(e, AllocatorPort, nil)
	})
	q := NewQServer("node0", "rwcp", 4, reg)
	n.Node("node0").SpawnDaemonOn("qserver", func(e transport.Env) {
		e.Sleep(time.Millisecond) // allocator first
		_ = q.Serve(e, QServerPort, "allocator:7100", nil)
	})

	var jobErr error
	n.Node("gatekeeper").SpawnOn("qclient", func(e transport.Env) {
		e.Sleep(5 * time.Millisecond)
		h, err := SubmitJob(e, "allocator:7100", JobRequest{Count: 1, Spec: ProcessSpec{Executable: "touch"}})
		if err != nil {
			jobErr = err
			return
		}
		jobErr = h.Wait(e, 5*time.Millisecond, 10*time.Second)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if jobErr != nil {
		t.Fatal(jobErr)
	}
	if !ran {
		t.Fatal("job never executed")
	}
	// The firewall really was consulted: without the opened ports the same
	// dial is denied.
	if fw.AllowedCount() == 0 {
		t.Fatal("firewall saw no traffic")
	}
}

// TestAllocatorPublishesToMDS verifies the GIS mirror: registrations appear
// as directory entries and allocations update their load attribute.
func TestAllocatorPublishesToMDS(t *testing.T) {
	env := transport.NewTCPEnv("localhost")

	dir := mds.NewDirectory()
	msrv := mds.NewServer(dir)
	mready := make(chan string, 1)
	env.Spawn("mds", func(e transport.Env) {
		_ = msrv.Serve(e, 0, func(a string) { mready <- a })
	})
	mdsAddr := <-mready
	defer msrv.Close(env)

	alloc := NewAllocator()
	alloc.PublishTo(mdsAddr, "ou=rwcp, o=grid")
	aready := make(chan string, 1)
	env.Spawn("alloc", func(e transport.Env) {
		_ = alloc.Serve(e, 0, func(a string) { aready <- a })
	})
	allocAddr := <-aready
	defer alloc.Close(env)

	if err := RegisterResource(env, allocAddr, "compas00", "compas00:7101", "compas", 4); err != nil {
		t.Fatal(err)
	}
	// Publication is asynchronous; poll briefly.
	var e *mds.Entry
	var err error
	for i := 0; i < 200; i++ {
		e, err = mds.Client{Addr: mdsAddr}.Get(env, "hn=compas00, ou=rwcp, o=grid")
		if err == nil {
			break
		}
		env.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("entry never appeared: %v", err)
	}
	if e.First("cluster") != "compas" || e.Int("cpus", 0) != 4 || e.Int("load", -1) != 0 {
		t.Fatalf("entry = %+v", e.Attrs)
	}

	if _, _, err := Allocate(env, allocAddr, 2, ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		e, _ = mds.Client{Addr: mdsAddr}.Get(env, "hn=compas00, ou=rwcp, o=grid")
		if e != nil && e.Int("load", -1) == 2 {
			break
		}
		env.Sleep(5 * time.Millisecond)
	}
	if e.Int("load", -1) != 2 {
		t.Fatalf("load = %s, want 2", e.First("load"))
	}
	if err := Release(env, allocAddr, []string{"compas00", "compas00"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		e, _ = mds.Client{Addr: mdsAddr}.Get(env, "hn=compas00, ou=rwcp, o=grid")
		if e != nil && e.Int("load", -1) == 0 {
			break
		}
		env.Sleep(5 * time.Millisecond)
	}
	if e.Int("load", -1) != 0 {
		t.Fatalf("load after release = %s, want 0", e.First("load"))
	}
	if alloc.MDSErrors() != 0 {
		t.Fatalf("MDS errors: %d", alloc.MDSErrors())
	}
}

// TestAllocatorSurvivesMissingMDS: publishing is best-effort.
func TestAllocatorSurvivesMissingMDS(t *testing.T) {
	env := transport.NewTCPEnv("localhost")
	// Find a dead port.
	l, _ := env.Listen(0)
	dead := l.Addr()
	_ = l.Close(env)

	alloc := NewAllocator()
	alloc.PublishTo(dead, "o=grid")
	aready := make(chan string, 1)
	env.Spawn("alloc", func(e transport.Env) {
		_ = alloc.Serve(e, 0, func(a string) { aready <- a })
	})
	allocAddr := <-aready
	defer alloc.Close(env)

	if err := RegisterResource(env, allocAddr, "n0", "n0:1", "c", 1); err != nil {
		t.Fatalf("registration failed because of MDS: %v", err)
	}
	if _, _, err := Allocate(env, allocAddr, 1, ""); err != nil {
		t.Fatalf("allocation failed because of MDS: %v", err)
	}
	for i := 0; i < 200 && alloc.MDSErrors() == 0; i++ {
		env.Sleep(5 * time.Millisecond)
	}
	if alloc.MDSErrors() == 0 {
		t.Fatal("publish failures not counted")
	}
}
