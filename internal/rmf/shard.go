package rmf

import "fmt"

// Shard is the per-site allocator core of the fleet control plane: a fixed
// host set with per-host CPU capacities and an indexed min-heap ordered by
// fractional load (running/cpus), so Allocate and Release are O(log hosts)
// and allocation-free in steady state. It is the wire-free analogue of
// Allocator.allocate's least-loaded policy, shrunk to exactly what a site
// gateway needs at 10k-host scale: the full Allocator sorts a candidate
// slice per slot and speaks the RMF protocol per request; a Shard keeps the
// order incrementally and is driven directly by the site's dispatch events.
//
// Fractional loads compare by integer cross-multiplication
// (load_i*cpus_j < load_j*cpus_i), so ordering is exact and deterministic —
// no float rounding, ties break on lower host index.
//
// Shard is not safe for concurrent use; fleet engines drive one shard per
// site from kernel context.
type Shard struct {
	cpus []int32 // capacity per host (immutable after NewShard)
	load []int32 // running jobs per host
	heap []int32 // host indexes, min-heap by fractional load
	pos  []int32 // host index -> heap position
	run  int     // total running
}

// NewShard creates a shard over len(cpus) hosts with the given per-host CPU
// capacities. Every capacity must be positive.
func NewShard(cpus []int32) *Shard {
	s := &Shard{
		cpus: make([]int32, len(cpus)),
		load: make([]int32, len(cpus)),
		heap: make([]int32, len(cpus)),
		pos:  make([]int32, len(cpus)),
	}
	for i, c := range cpus {
		if c <= 0 {
			panic(fmt.Sprintf("rmf: NewShard: host %d has non-positive capacity %d", i, c))
		}
		s.cpus[i] = c
		s.heap[i] = int32(i)
		s.pos[i] = int32(i)
	}
	return s
}

// NewUniformShard creates a shard over hosts identical hosts of cpusEach
// CPUs without materializing a capacity slice.
func NewUniformShard(hosts, cpusEach int) *Shard {
	s := &Shard{
		cpus: make([]int32, hosts),
		load: make([]int32, hosts),
		heap: make([]int32, hosts),
		pos:  make([]int32, hosts),
	}
	if cpusEach <= 0 {
		panic(fmt.Sprintf("rmf: NewUniformShard: non-positive capacity %d", cpusEach))
	}
	for i := range s.cpus {
		s.cpus[i] = int32(cpusEach)
		s.heap[i] = int32(i)
		s.pos[i] = int32(i)
	}
	return s
}

// Hosts reports the host count.
func (s *Shard) Hosts() int { return len(s.cpus) }

// Running reports the total number of held slots.
func (s *Shard) Running() int { return s.run }

// Load reports host h's current slot count.
func (s *Shard) Load(h int) int { return int(s.load[h]) }

// Cpus reports host h's capacity.
func (s *Shard) Cpus(h int) int { return int(s.cpus[h]) }

// Free reports the total free slots across the shard.
func (s *Shard) Free() int {
	total := 0
	for _, c := range s.cpus {
		total += int(c)
	}
	return total - s.run
}

// Allocate claims one CPU slot on the least-fractionally-loaded host and
// returns its index. ok is false when every host is saturated — the caller
// queues the job and retries on the next Release.
func (s *Shard) Allocate() (host int, ok bool) {
	h := s.heap[0]
	if s.load[h] >= s.cpus[h] {
		return -1, false // heap min is saturated => all hosts are
	}
	s.load[h]++
	s.run++
	s.siftDown(0)
	return int(h), true
}

// Release returns one slot on host h, restoring heap order.
func (s *Shard) Release(h int) {
	if s.load[h] <= 0 {
		panic(fmt.Sprintf("rmf: Shard.Release(%d): host has no held slots", h))
	}
	s.load[h]--
	s.run--
	s.siftUp(int(s.pos[h]))
}

// less orders heap positions i, j by fractional load with exact integer
// cross-multiplication; ties break on lower host index for determinism.
func (s *Shard) less(i, j int) bool {
	a, b := s.heap[i], s.heap[j]
	la, lb := int64(s.load[a])*int64(s.cpus[b]), int64(s.load[b])*int64(s.cpus[a])
	if la != lb {
		return la < lb
	}
	return a < b
}

func (s *Shard) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.pos[s.heap[i]] = int32(i)
	s.pos[s.heap[j]] = int32(j)
}

func (s *Shard) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *Shard) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(l, min) {
			min = l
		}
		if r < n && s.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		s.swap(i, min)
		i = min
	}
}
