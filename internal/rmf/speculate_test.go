package rmf

import (
	"testing"
	"time"

	"nxcluster/internal/sim"
	"nxcluster/internal/simnet"
	"nxcluster/internal/transport"
)

// buildSpecWorld wires a minimal allocator + two Q servers + client LAN for
// the speculation tests and submits one "burn" job (2s of Compute), which
// lands on q0 by the allocator's name tie-break.
func buildSpecWorld(t *testing.T, plan *simnet.FaultPlan, policy *RecoveryPolicy) (jobErr error, h *JobHandle, completedOn []string) {
	k := sim.New()
	n := simnet.New(k)
	for _, host := range []string{"alloc", "q0", "q1", "client"} {
		n.AddHost(host, simnet.HostConfig{})
	}
	n.AddRouter("sw", "")
	lan := simnet.LinkConfig{Latency: time.Millisecond, Bandwidth: 12 << 20}
	for _, host := range []string{"alloc", "q0", "q1", "client"} {
		n.Connect(host, "sw", lan)
	}
	alloc := NewAllocator()
	n.Node("alloc").SpawnDaemonOn("alloc", func(e transport.Env) {
		_ = alloc.Serve(e, AllocatorPort, nil)
	})
	reg := NewRegistry()
	reg.Register("burn", func(env transport.Env, ctx *JobContext) error {
		env.Compute(2 * time.Second) // stretched by SlowHost on a straggler
		completedOn = append(completedOn, ctx.Resource)
		return nil
	})
	for _, name := range []string{"q0", "q1"} {
		res := name
		q := NewQServer(res, "c", 4, reg)
		n.Node(res).SpawnDaemonOn("qserver-"+res, func(e transport.Env) {
			e.Sleep(time.Millisecond)
			_ = q.Serve(e, QServerPort, "alloc:7100", nil)
		})
	}
	n.Node("client").SpawnOn("qclient", func(e transport.Env) {
		e.Sleep(100 * time.Millisecond)
		var err error
		h, err = SubmitJob(e, "alloc:7100", JobRequest{Count: 1, Spec: ProcessSpec{Executable: "burn"}})
		if err != nil {
			jobErr = err
			return
		}
		if h.Processes[0].Resource != "q0" {
			t.Errorf("job landed on %s, want q0", h.Processes[0].Resource)
		}
		h.Recovery = policy
		jobErr = h.Wait(e, 100*time.Millisecond, 30*time.Second)
	})
	if plan != nil {
		if err := n.ApplyPlan(plan); err != nil {
			t.Fatal(err)
		}
	}
	k.RunUntil(40 * time.Second)
	k.Shutdown()
	return jobErr, h, completedOn
}

// TestSpeculationBeatsStraggler slows the primary's host tenfold: the
// progress deadline launches one duplicate on the healthy Q server, the copy
// finishes first, and first-completion-wins swaps it in — no requeue, and
// the straggler's slot is released while it grinds on (at-least-once).
func TestSpeculationBeatsStraggler(t *testing.T) {
	plan := (&simnet.FaultPlan{}).SlowHost("q0", 10, 0, 0)
	jobErr, h, completedOn := buildSpecWorld(t, plan,
		&RecoveryPolicy{StatusRetries: 3, SpeculateAfter: 3 * time.Second})
	if jobErr != nil {
		t.Fatalf("Wait = %v", jobErr)
	}
	if h.Speculations != 1 {
		t.Errorf("speculations = %d, want 1", h.Speculations)
	}
	if h.Requeues != 0 {
		t.Errorf("requeues = %d, want 0 (speculation, not requeue)", h.Requeues)
	}
	if h.Processes[0].Resource != "q1" {
		t.Errorf("winner = %s, want the copy on q1", h.Processes[0].Resource)
	}
	if len(completedOn) == 0 || completedOn[0] != "q1" {
		t.Errorf("first completion on %v, want q1", completedOn)
	}
}

// TestSpeculationPromotedWhenPrimaryDies crashes the straggler after the
// copy is already in flight: Wait must promote the copy instead of requeuing
// onto a fresh slot, and the job still completes exactly once.
func TestSpeculationPromotedWhenPrimaryDies(t *testing.T) {
	plan := (&simnet.FaultPlan{}).
		SlowHost("q0", 10, 0, 0).
		Crash("q0", 5*time.Second) // after SpeculateAfter fires at ~3.1s
	jobErr, h, completedOn := buildSpecWorld(t, plan,
		&RecoveryPolicy{StatusRetries: 3, SpeculateAfter: 3 * time.Second})
	if jobErr != nil {
		t.Fatalf("Wait = %v", jobErr)
	}
	if h.Speculations != 1 {
		t.Errorf("speculations = %d, want 1", h.Speculations)
	}
	if h.Requeues != 0 {
		t.Errorf("requeues = %d, want 0 (copy promoted, not requeued)", h.Requeues)
	}
	if h.Processes[0].Resource != "q1" {
		t.Errorf("winner = %s, want q1", h.Processes[0].Resource)
	}
	if len(completedOn) != 1 || completedOn[0] != "q1" {
		t.Errorf("completions = %v, want exactly [q1]", completedOn)
	}
}

// TestNoSpeculationWithoutDeadline: the same straggler with no SpeculateAfter
// just runs slow — no duplicates, primary keeps its slot and wins.
func TestNoSpeculationWithoutDeadline(t *testing.T) {
	plan := (&simnet.FaultPlan{}).SlowHost("q0", 10, 0, 0)
	jobErr, h, completedOn := buildSpecWorld(t, plan, &RecoveryPolicy{StatusRetries: 3})
	if jobErr != nil {
		t.Fatalf("Wait = %v", jobErr)
	}
	if h.Speculations != 0 {
		t.Errorf("speculations = %d, want 0", h.Speculations)
	}
	if len(completedOn) != 1 || completedOn[0] != "q0" {
		t.Errorf("completions = %v, want [q0]", completedOn)
	}
}
