package nexus

import (
	"testing"
	"time"

	"nxcluster/internal/proxy"
	"nxcluster/internal/transport"
)

// TestGarbageOnListenerIgnored: random bytes on a Nexus context's port must
// not crash the reader or corrupt later traffic.
func TestGarbageOnListenerIgnored(t *testing.T) {
	env := transport.NewTCPEnv("localhost")
	ctx, err := Init(env, proxy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Shutdown(env)
	got := make(chan int64, 1)
	ep := ctx.NewEndpoint()
	ep.Register(1, func(e transport.Env, b *Buffer) {
		v, _ := b.GetInt64()
		got <- v
	})

	// Garbage connection: a huge bogus frame header then EOF.
	g, err := env.Dial(ctx.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = g.Write(env, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	_ = g.Close(env)

	// A well-formed RSR still goes through.
	sp, err := ctx.Attach(env, ep.Address())
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuffer()
	b.PutInt64(31337)
	if err := sp.Send(env, 1, b); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 31337 {
			t.Fatalf("got %d", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RSR lost after garbage connection")
	}
}

// TestShutdownStopsAccepting: after Shutdown new attaches fail but existing
// startpoints keep working (connections drain on their own).
func TestShutdownStopsAccepting(t *testing.T) {
	env := transport.NewTCPEnv("localhost")
	ctx, err := Init(env, proxy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 4)
	ep := ctx.NewEndpoint()
	ep.Register(1, func(e transport.Env, b *Buffer) {
		s, _ := b.GetString()
		got <- s
	})
	sp, err := ctx.Attach(env, ep.Address())
	if err != nil {
		t.Fatal(err)
	}
	ctx.Shutdown(env)
	ctx.Shutdown(env) // idempotent

	// The pre-existing connection still delivers.
	b := NewBuffer()
	b.PutString("still-alive")
	if err := sp.Send(env, 1, b); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "still-alive" {
			t.Fatalf("got %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("existing startpoint broken by Shutdown")
	}
	// New attaches fail: the listener is gone.
	if _, err := ctx.Attach(env, ep.Address()); err == nil {
		t.Fatal("attach succeeded after Shutdown")
	}
}

// TestStartpointCloseStopsDelivery: RSRs after Close fail cleanly.
func TestStartpointCloseStopsDelivery(t *testing.T) {
	env := transport.NewTCPEnv("localhost")
	ctx, err := Init(env, proxy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Shutdown(env)
	ep := ctx.NewEndpoint()
	ep.Register(1, func(e transport.Env, b *Buffer) {})
	sp, err := ctx.Attach(env, ep.Address())
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(env); err != nil {
		t.Fatal(err)
	}
	// The write may need a beat for the close to take effect on loopback.
	failed := false
	for i := 0; i < 50; i++ {
		if err := sp.Send(env, 1, NewBuffer()); err != nil {
			failed = true
			break
		}
		env.Sleep(10 * time.Millisecond)
	}
	if !failed {
		t.Fatal("sends kept succeeding on a closed startpoint")
	}
}
