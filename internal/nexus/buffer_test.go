package nexus

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBufferRoundTrip(t *testing.T) {
	b := NewBuffer()
	b.PutInt32(-42)
	b.PutInt64(1 << 40)
	b.PutFloat64(3.14159)
	b.PutBool(true)
	b.PutBool(false)
	b.PutString("knapsack")
	b.PutBytes([]byte{1, 2, 3})
	b.PutInt64s([]int64{7, -8, 9})

	r := FromBytes(b.Bytes())
	if v, err := r.GetInt32(); err != nil || v != -42 {
		t.Fatalf("GetInt32 = %d, %v", v, err)
	}
	if v, err := r.GetInt64(); err != nil || v != 1<<40 {
		t.Fatalf("GetInt64 = %d, %v", v, err)
	}
	if v, err := r.GetFloat64(); err != nil || v != 3.14159 {
		t.Fatalf("GetFloat64 = %v, %v", v, err)
	}
	if v, err := r.GetBool(); err != nil || !v {
		t.Fatalf("GetBool = %v, %v", v, err)
	}
	if v, err := r.GetBool(); err != nil || v {
		t.Fatalf("GetBool = %v, %v", v, err)
	}
	if v, err := r.GetString(); err != nil || v != "knapsack" {
		t.Fatalf("GetString = %q, %v", v, err)
	}
	if v, err := r.GetBytes(); err != nil || len(v) != 3 || v[2] != 3 {
		t.Fatalf("GetBytes = %v, %v", v, err)
	}
	vs, err := r.GetInt64s()
	if err != nil || len(vs) != 3 || vs[1] != -8 {
		t.Fatalf("GetInt64s = %v, %v", vs, err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d after full read", r.Remaining())
	}
}

func TestBufferShortReads(t *testing.T) {
	r := FromBytes([]byte{0, 0})
	if _, err := r.GetInt32(); !errors.Is(err, ErrBufferShort) {
		t.Fatalf("GetInt32 on short buffer = %v", err)
	}
	b := NewBuffer()
	b.PutInt32(100) // claims 100 bytes follow
	r = FromBytes(b.Bytes())
	if _, err := r.GetBytes(); !errors.Is(err, ErrBufferShort) {
		t.Fatalf("GetBytes with lying prefix = %v", err)
	}
}

func TestBufferNegativeLengthRejected(t *testing.T) {
	b := NewBuffer()
	b.PutInt32(-1)
	r := FromBytes(b.Bytes())
	if _, err := r.GetBytes(); !errors.Is(err, ErrBufferShort) {
		t.Fatalf("negative length = %v, want ErrBufferShort", err)
	}
	r.Rewind()
	if _, err := r.GetInt64s(); !errors.Is(err, ErrBufferShort) {
		t.Fatalf("negative slice length = %v, want ErrBufferShort", err)
	}
}

func TestBufferResetAndRewind(t *testing.T) {
	b := NewBuffer()
	b.PutInt32(5)
	if _, err := b.GetInt32(); err != nil {
		t.Fatal(err)
	}
	b.Rewind()
	if v, err := b.GetInt32(); err != nil || v != 5 {
		t.Fatalf("after Rewind: %d, %v", v, err)
	}
	b.Reset()
	if b.Len() != 0 || b.Remaining() != 0 {
		t.Fatalf("after Reset: len=%d rem=%d", b.Len(), b.Remaining())
	}
}

// Property: arbitrary sequences of scalar values round-trip exactly.
func TestQuickScalarRoundTrip(t *testing.T) {
	prop := func(i32 int32, i64 int64, f float64, s string, bs []byte, ok bool) bool {
		if math.IsNaN(f) {
			f = 0 // NaN != NaN would fail the comparison, not the codec
		}
		b := NewBuffer()
		b.PutInt32(i32)
		b.PutInt64(i64)
		b.PutFloat64(f)
		b.PutString(s)
		b.PutBytes(bs)
		b.PutBool(ok)
		r := FromBytes(b.Bytes())
		g32, e1 := r.GetInt32()
		g64, e2 := r.GetInt64()
		gf, e3 := r.GetFloat64()
		gs, e4 := r.GetString()
		gbs, e5 := r.GetBytes()
		gok, e6 := r.GetBool()
		if e1 != nil || e2 != nil || e3 != nil || e4 != nil || e5 != nil || e6 != nil {
			return false
		}
		if g32 != i32 || g64 != i64 || gf != f || gs != s || gok != ok {
			return false
		}
		if len(gbs) != len(bs) {
			return false
		}
		for i := range bs {
			if gbs[i] != bs[i] {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseAddress(t *testing.T) {
	hp, ep, err := ParseAddress("x-nexus://etl-o2k:41233/7")
	if err != nil || hp != "etl-o2k:41233" || ep != 7 {
		t.Fatalf("ParseAddress = %q, %d, %v", hp, ep, err)
	}
	for _, bad := range []string{"", "http://a:1/2", "x-nexus://a:1", "x-nexus://a:1/x"} {
		if _, _, err := ParseAddress(bad); err == nil {
			t.Errorf("ParseAddress(%q) succeeded", bad)
		}
	}
}
