package nexus

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestWireFrameRoundTrip(t *testing.T) {
	b := NewBuffer()
	b.PutString("payload")
	b.PutInt64(99)
	var w bytes.Buffer
	if err := WriteFrame(&w, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&w, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := got.GetString()
	v, _ := got.GetInt64()
	if s != "payload" || v != 99 {
		t.Fatalf("round trip = %q, %d", s, v)
	}
}

func TestWireFrameSizeLimit(t *testing.T) {
	b := NewBuffer()
	b.PutBytes(make([]byte, 100))
	var w bytes.Buffer
	if err := WriteFrame(&w, b); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&w, 10); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestWireFrameTruncated(t *testing.T) {
	b := NewBuffer()
	b.PutString("data")
	var w bytes.Buffer
	_ = WriteFrame(&w, b)
	raw := w.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		if _, err := ReadFrame(bytes.NewReader(raw[:cut]), 0); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestQuickWireRoundTrip(t *testing.T) {
	prop := func(payload []byte) bool {
		b := NewBuffer()
		b.PutBytes(payload)
		var w bytes.Buffer
		if err := WriteFrame(&w, b); err != nil {
			return false
		}
		got, err := ReadFrame(&w, 0)
		if err != nil {
			return false
		}
		data, err := got.GetBytes()
		return err == nil && bytes.Equal(data, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEndpointDestroyDropsRSRs(t *testing.T) {
	// Covered behaviorally: destroying an endpoint makes later RSRs count
	// as dropped. Uses the in-package context plumbing directly.
	ctx := &Context{endpoints: make(map[uint32]*Endpoint)}
	ep := ctx.NewEndpoint()
	if ctx.endpoints[ep.id] == nil {
		t.Fatal("endpoint not registered")
	}
	ep.Destroy()
	if ctx.endpoints[ep.id] != nil {
		t.Fatal("endpoint still registered after Destroy")
	}
}
