package nexus

import (
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"

	"nxcluster/internal/proxy"
	"nxcluster/internal/transport"
)

// Scheme prefixes every endpoint address.
const Scheme = "x-nexus://"

// Handler receives a remote service request's buffer. Handlers run on the
// delivering connection's reader process, so per-startpoint ordering is
// preserved; a handler must not block waiting for a later message from the
// same connection (hand work to a queue instead).
type Handler func(env transport.Env, b *Buffer)

// Context is one process's Nexus world: a single listener (direct or via
// the Nexus Proxy) demultiplexing RSRs to its endpoints.
type Context struct {
	dialer    proxy.Dialer
	listener  transport.Listener
	addr      string
	endpoints map[uint32]*Endpoint
	nextEP    uint32
	closed    bool
	rsrCount  int64 // delivered RSRs
	dropCount int64 // undeliverable RSRs
}

// Init creates a context: it binds the process's Nexus port (through the
// proxy when cfg enables it, exactly like the paper's patched Globus) and
// starts the accept loop on a spawned process.
func Init(env transport.Env, cfg proxy.Config) (*Context, error) {
	dialer := proxy.Dialer{Cfg: cfg}
	l, err := dialer.Listen(env, 0)
	if err != nil {
		return nil, fmt.Errorf("nexus: bind: %w", err)
	}
	ctx := &Context{
		dialer:    dialer,
		listener:  l,
		addr:      l.Addr(),
		endpoints: make(map[uint32]*Endpoint),
	}
	env.SpawnService("nexus:accept", ctx.acceptLoop)
	return ctx, nil
}

// Addr returns the context's advertised "host:port" (the proxy public
// address when proxied).
func (c *Context) Addr() string { return c.addr }

// Delivered returns the count of RSRs dispatched to handlers.
func (c *Context) Delivered() int64 { return atomic.LoadInt64(&c.rsrCount) }

// Dropped returns the count of RSRs that arrived for unknown endpoints or
// handlers.
func (c *Context) Dropped() int64 { return atomic.LoadInt64(&c.dropCount) }

// Shutdown closes the listener; existing connections drain on their own.
func (c *Context) Shutdown(env transport.Env) {
	if c.closed {
		return
	}
	c.closed = true
	_ = c.listener.Close(env)
}

func (c *Context) acceptLoop(env transport.Env) {
	for {
		conn, err := c.listener.Accept(env)
		if err != nil {
			return
		}
		cc := conn
		env.SpawnService("nexus:reader", func(e transport.Env) { c.readLoop(e, cc) })
	}
}

// readLoop decodes frames [epID u32][handlerID u32][len u32][payload] and
// dispatches to handlers in arrival order.
func (c *Context) readLoop(env transport.Env, conn transport.Conn) {
	st := transport.Stream{Env: env, Conn: conn}
	var hdr [12]byte
	for {
		if _, err := io.ReadFull(st, hdr[:]); err != nil {
			_ = conn.Close(env)
			return
		}
		epID := binary.BigEndian.Uint32(hdr[0:4])
		handlerID := binary.BigEndian.Uint32(hdr[4:8])
		n := binary.BigEndian.Uint32(hdr[8:12])
		payload := make([]byte, n)
		if _, err := io.ReadFull(st, payload); err != nil {
			_ = conn.Close(env)
			return
		}
		ep := c.endpoints[epID]
		if ep == nil {
			atomic.AddInt64(&c.dropCount, 1)
			continue
		}
		h := ep.handlers[handlerID]
		if h == nil {
			atomic.AddInt64(&c.dropCount, 1)
			continue
		}
		atomic.AddInt64(&c.rsrCount, 1)
		h(env, FromBytes(payload))
	}
}

// Endpoint is a communication endpoint: an addressable handler table.
type Endpoint struct {
	ctx      *Context
	id       uint32
	handlers map[uint32]Handler
}

// NewEndpoint allocates an endpoint in this context.
func (c *Context) NewEndpoint() *Endpoint {
	c.nextEP++
	ep := &Endpoint{ctx: c, id: c.nextEP, handlers: make(map[uint32]Handler)}
	c.endpoints[ep.id] = ep
	return ep
}

// Register binds handler id to fn.
func (ep *Endpoint) Register(id uint32, fn Handler) { ep.handlers[id] = fn }

// Address returns the endpoint's attachable address,
// "x-nexus://host:port/epID". When the context runs behind the Nexus Proxy
// the host:port is the outer server's public relay address — remote
// startpoints need no special handling.
func (ep *Endpoint) Address() string {
	return fmt.Sprintf("%s%s/%d", Scheme, ep.ctx.addr, ep.id)
}

// Destroy unregisters the endpoint.
func (ep *Endpoint) Destroy() { delete(ep.ctx.endpoints, ep.id) }

// ParseAddress splits an endpoint address into transport address and
// endpoint id.
func ParseAddress(addr string) (hostport string, epID uint32, err error) {
	if !strings.HasPrefix(addr, Scheme) {
		return "", 0, fmt.Errorf("nexus: address %q: missing %s scheme", addr, Scheme)
	}
	rest := addr[len(Scheme):]
	i := strings.LastIndexByte(rest, '/')
	if i < 0 {
		return "", 0, fmt.Errorf("nexus: address %q: missing endpoint id", addr)
	}
	id, err := strconv.ParseUint(rest[i+1:], 10, 32)
	if err != nil {
		return "", 0, fmt.Errorf("nexus: address %q: bad endpoint id", addr)
	}
	return rest[:i], uint32(id), nil
}

// Startpoint is the sending side of a Nexus communication link, attached to
// one remote endpoint over one connection.
type Startpoint struct {
	conn transport.Conn
	epID uint32
	addr string
	mu   transport.Mutex
	sent int64
}

// Attach connects a startpoint to the endpoint at addr, dialing through the
// Nexus Proxy when this context is configured for it.
func (c *Context) Attach(env transport.Env, addr string) (*Startpoint, error) {
	hostport, epID, err := ParseAddress(addr)
	if err != nil {
		return nil, err
	}
	conn, err := c.dialer.Dial(env, hostport)
	if err != nil {
		return nil, fmt.Errorf("nexus: attach %s: %w", addr, err)
	}
	return &Startpoint{conn: conn, epID: epID, addr: addr, mu: env.NewMutex()}, nil
}

// Address returns the attached endpoint's address.
func (sp *Startpoint) Address() string { return sp.addr }

// Sent returns the number of RSRs sent.
func (sp *Startpoint) Sent() int64 { return atomic.LoadInt64(&sp.sent) }

// Send issues a remote service request: the buffer is delivered to the
// endpoint's handler handlerID. Sends from multiple processes serialize on
// an internal lock; per-startpoint ordering is guaranteed.
func (sp *Startpoint) Send(env transport.Env, handlerID uint32, b *Buffer) error {
	payload := b.Bytes()
	frame := make([]byte, 12+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], sp.epID)
	binary.BigEndian.PutUint32(frame[4:8], handlerID)
	binary.BigEndian.PutUint32(frame[8:12], uint32(len(payload)))
	copy(frame[12:], payload)
	sp.mu.Lock(env)
	defer sp.mu.Unlock(env)
	if _, err := sp.conn.Write(env, frame); err != nil {
		return fmt.Errorf("nexus: send to %s: %w", sp.addr, err)
	}
	atomic.AddInt64(&sp.sent, 1)
	return nil
}

// Close releases the startpoint's connection.
func (sp *Startpoint) Close(env transport.Env) error { return sp.conn.Close(env) }
