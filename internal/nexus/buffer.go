// Package nexus reimplements the communication abstractions of the Globus
// Nexus library that the paper's system is built on: endpoints that register
// handlers, startpoints attached to remote endpoints, and remote service
// requests (RSRs) carrying typed buffers. This is the layer the paper
// patched — startpoint attachment goes through NXProxyConnect and endpoint
// addresses advertise the proxy's public port when the Nexus Proxy is
// configured (via the equivalent of the NEXUS_PROXY_OUTER_SERVER /
// NEXUS_PROXY_INNER_SERVER environment variables).
package nexus

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrBufferShort is returned by Get operations that run past the end of the
// buffer.
var ErrBufferShort = errors.New("nexus: buffer too short")

// Buffer is a typed serialization buffer for remote service requests,
// mirroring nexus_put_*/nexus_get_* . Puts append; Gets consume from a read
// cursor. All encoding is big-endian.
type Buffer struct {
	data []byte
	off  int
}

// NewBuffer creates an empty buffer.
func NewBuffer() *Buffer { return &Buffer{} }

// FromBytes wraps received bytes for reading.
func FromBytes(b []byte) *Buffer { return &Buffer{data: b} }

// Bytes returns the full encoded contents.
func (b *Buffer) Bytes() []byte { return b.data }

// Len returns the total encoded length.
func (b *Buffer) Len() int { return len(b.data) }

// Remaining returns the unread byte count.
func (b *Buffer) Remaining() int { return len(b.data) - b.off }

// Reset clears contents and cursor.
func (b *Buffer) Reset() { b.data = b.data[:0]; b.off = 0 }

// Rewind moves the read cursor back to the start.
func (b *Buffer) Rewind() { b.off = 0 }

// PutInt32 appends a 32-bit integer.
func (b *Buffer) PutInt32(v int32) {
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], uint32(v))
	b.data = append(b.data, tmp[:]...)
}

// PutInt64 appends a 64-bit integer.
func (b *Buffer) PutInt64(v int64) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(v))
	b.data = append(b.data, tmp[:]...)
}

// PutFloat64 appends a 64-bit float.
func (b *Buffer) PutFloat64(v float64) {
	b.PutInt64(int64(math.Float64bits(v)))
}

// PutBool appends a boolean as one byte.
func (b *Buffer) PutBool(v bool) {
	if v {
		b.data = append(b.data, 1)
	} else {
		b.data = append(b.data, 0)
	}
}

// PutBytes appends a length-prefixed byte slice.
func (b *Buffer) PutBytes(v []byte) {
	b.PutInt32(int32(len(v)))
	b.data = append(b.data, v...)
}

// PutString appends a length-prefixed string.
func (b *Buffer) PutString(v string) { b.PutBytes([]byte(v)) }

// PutInt64s appends a length-prefixed slice of 64-bit integers.
func (b *Buffer) PutInt64s(vs []int64) {
	b.PutInt32(int32(len(vs)))
	for _, v := range vs {
		b.PutInt64(v)
	}
}

func (b *Buffer) take(n int) ([]byte, error) {
	if b.Remaining() < n {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrBufferShort, n, b.Remaining())
	}
	s := b.data[b.off : b.off+n]
	b.off += n
	return s, nil
}

// GetInt32 consumes a 32-bit integer.
func (b *Buffer) GetInt32() (int32, error) {
	s, err := b.take(4)
	if err != nil {
		return 0, err
	}
	return int32(binary.BigEndian.Uint32(s)), nil
}

// GetInt64 consumes a 64-bit integer.
func (b *Buffer) GetInt64() (int64, error) {
	s, err := b.take(8)
	if err != nil {
		return 0, err
	}
	return int64(binary.BigEndian.Uint64(s)), nil
}

// GetFloat64 consumes a 64-bit float.
func (b *Buffer) GetFloat64() (float64, error) {
	v, err := b.GetInt64()
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(uint64(v)), nil
}

// GetBool consumes a boolean.
func (b *Buffer) GetBool() (bool, error) {
	s, err := b.take(1)
	if err != nil {
		return false, err
	}
	return s[0] != 0, nil
}

// GetBytes consumes a length-prefixed byte slice; the returned slice aliases
// the buffer.
func (b *Buffer) GetBytes() ([]byte, error) {
	n, err := b.GetInt32()
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("%w: negative length", ErrBufferShort)
	}
	return b.take(int(n))
}

// GetString consumes a length-prefixed string.
func (b *Buffer) GetString() (string, error) {
	s, err := b.GetBytes()
	if err != nil {
		return "", err
	}
	return string(s), nil
}

// GetInt64s consumes a length-prefixed slice of 64-bit integers.
func (b *Buffer) GetInt64s() ([]int64, error) {
	n, err := b.GetInt32()
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("%w: negative length", ErrBufferShort)
	}
	out := make([]int64, n)
	for i := range out {
		if out[i], err = b.GetInt64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
