package nexus

import (
	"testing"
	"time"

	"nxcluster/internal/firewall"
	"nxcluster/internal/proxy"
	"nxcluster/internal/sim"
	"nxcluster/internal/simnet"
	"nxcluster/internal/transport"
)

func TestRSRRoundTripTCP(t *testing.T) {
	env := transport.NewTCPEnv("localhost")
	ctx, err := Init(env, proxy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Shutdown(env)

	got := make(chan string, 1)
	ep := ctx.NewEndpoint()
	ep.Register(1, func(e transport.Env, b *Buffer) {
		s, err := b.GetString()
		if err != nil {
			t.Errorf("handler decode: %v", err)
			return
		}
		got <- s
	})

	sp, err := ctx.Attach(env, ep.Address())
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuffer()
	b.PutString("remote service request")
	if err := sp.Send(env, 1, b); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "remote service request" {
			t.Fatalf("handler got %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RSR never delivered")
	}
	if sp.Sent() != 1 {
		t.Fatalf("Sent = %d, want 1", sp.Sent())
	}
	if ctx.Delivered() != 1 {
		t.Fatalf("Delivered = %d, want 1", ctx.Delivered())
	}
}

func TestUnknownHandlerDropped(t *testing.T) {
	env := transport.NewTCPEnv("localhost")
	ctx, err := Init(env, proxy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Shutdown(env)
	ep := ctx.NewEndpoint()
	sp, err := ctx.Attach(env, ep.Address())
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Send(env, 99, NewBuffer()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100 && ctx.Dropped() == 0; i++ {
		env.Sleep(5 * time.Millisecond)
	}
	if ctx.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", ctx.Dropped())
	}
}

func TestAttachBadAddress(t *testing.T) {
	env := transport.NewTCPEnv("localhost")
	ctx, err := Init(env, proxy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Shutdown(env)
	if _, err := ctx.Attach(env, "x-nexus://localhost:1/9"); err == nil {
		t.Fatal("attach to dead port succeeded")
	}
	if _, err := ctx.Attach(env, "garbage"); err == nil {
		t.Fatal("attach to garbage address succeeded")
	}
}

func TestOrderingPreservedPerStartpoint(t *testing.T) {
	env := transport.NewTCPEnv("localhost")
	ctx, err := Init(env, proxy.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Shutdown(env)

	const n = 200
	got := make(chan int64, n)
	ep := ctx.NewEndpoint()
	ep.Register(1, func(e transport.Env, b *Buffer) {
		v, _ := b.GetInt64()
		got <- v
	})
	sp, err := ctx.Attach(env, ep.Address())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		b := NewBuffer()
		b.PutInt64(i)
		if err := sp.Send(env, 1, b); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < n; i++ {
		select {
		case v := <-got:
			if v != i {
				t.Fatalf("RSR %d arrived out of order (got %d)", i, v)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("RSR %d never arrived", i)
		}
	}
}

// TestNexusOverProxyInSim runs the full stack the paper describes: two Nexus
// contexts on opposite sides of a firewall communicating via the Nexus
// Proxy, inside the simulator.
func TestNexusOverProxyInSim(t *testing.T) {
	k := sim.New()
	n := simnet.New(k)
	n.AddHost("pa", simnet.HostConfig{Site: "rwcp"})
	n.AddHost("inner", simnet.HostConfig{Site: "rwcp"})
	n.AddHost("outer", simnet.HostConfig{})
	n.AddHost("pb", simnet.HostConfig{})
	lan := simnet.LinkConfig{Latency: 500 * time.Microsecond, Bandwidth: 12 << 20}
	n.Connect("pa", "inner", lan)
	n.Connect("inner", "outer", lan)
	n.Connect("outer", "pb", simnet.LinkConfig{Latency: 2 * time.Millisecond, Bandwidth: 187 << 10})
	fw := firewall.New("rwcp")
	fw.AllowIncomingPort(7010, "nxport")
	n.SetFirewall("rwcp", fw)

	innerSrv := proxy.NewInnerServer(proxy.RelayConfig{})
	n.Node("inner").SpawnDaemonOn("inner", func(env transport.Env) { _ = innerSrv.Serve(env, 7010, nil) })
	outerSrv := proxy.NewOuterServer("inner:7010", proxy.RelayConfig{})
	n.Node("outer").SpawnDaemonOn("outer", func(env transport.Env) { _ = outerSrv.Serve(env, 7000, nil) })

	cfg := proxy.Config{OuterServer: "outer:7000", InnerServer: "inner:7010"}
	addrCh := make(chan string, 1)
	var echoed string

	// PA: firewalled process with a proxied Nexus context.
	n.Node("pa").SpawnDaemonOn("pa", func(env transport.Env) {
		env.Sleep(time.Millisecond)
		ctx, err := Init(env, cfg)
		if err != nil {
			t.Errorf("pa init: %v", err)
			return
		}
		ep := ctx.NewEndpoint()
		ep.Register(1, func(e transport.Env, b *Buffer) {
			msg, _ := b.GetString()
			reply, _ := b.GetString()
			// Reply over a fresh startpoint to PB's endpoint.
			e.Spawn("pa-reply", func(e2 transport.Env) {
				sp, err := ctx.Attach(e2, reply)
				if err != nil {
					t.Errorf("pa attach reply: %v", err)
					return
				}
				rb := NewBuffer()
				rb.PutString("echo:" + msg)
				_ = sp.Send(e2, 1, rb)
			})
		})
		addrCh <- ep.Address()
	})

	// PB: public process; sends an RSR to PA's proxied endpoint.
	n.Node("pb").SpawnOn("pb", func(env transport.Env) {
		ctx, err := Init(env, proxy.Config{})
		if err != nil {
			t.Errorf("pb init: %v", err)
			return
		}
		done := transport.NewQueue[string](env)
		rep := ctx.NewEndpoint()
		rep.Register(1, func(e transport.Env, b *Buffer) {
			s, _ := b.GetString()
			done.Put(e, s)
		})
		for len(addrCh) == 0 {
			env.Sleep(time.Millisecond)
		}
		paAddr := <-addrCh
		// The advertised host must be the outer relay, not PA.
		hp, _, err := ParseAddress(paAddr)
		if err != nil {
			t.Errorf("parse pa addr: %v", err)
			return
		}
		host, _, _ := transport.SplitAddr(hp)
		if host != "outer" {
			t.Errorf("PA advertises %q, want outer relay host", paAddr)
		}
		sp, err := ctx.Attach(env, paAddr)
		if err != nil {
			t.Errorf("pb attach: %v", err)
			return
		}
		b := NewBuffer()
		b.PutString("hello")
		b.PutString(rep.Address())
		if err := sp.Send(env, 1, b); err != nil {
			t.Errorf("pb send: %v", err)
			return
		}
		if v, ok := done.Get(env); ok {
			echoed = v
		}
	})

	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if echoed != "echo:hello" {
		t.Fatalf("echoed = %q, want echo:hello", echoed)
	}
}
