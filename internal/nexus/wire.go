package nexus

import (
	"encoding/binary"
	"fmt"
	"io"
)

// DefaultMaxFrame bounds ReadFrame when callers pass max <= 0.
const DefaultMaxFrame = 16 << 20

// WriteFrame writes a length-prefixed buffer, the framing every control
// protocol in this system (RMF, GRAM, MDS) shares.
func WriteFrame(w io.Writer, b *Buffer) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(b.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b.Bytes())
	return err
}

// ReadFrame reads a length-prefixed buffer, rejecting frames over max
// bytes (DefaultMaxFrame if max <= 0).
func ReadFrame(r io.Reader, max int) (*Buffer, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if int(n) > max {
		return nil, fmt.Errorf("nexus: frame of %d bytes exceeds limit %d", n, max)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return FromBytes(body), nil
}
