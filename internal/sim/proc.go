package sim

import (
	"fmt"
	"time"
)

// Proc is the handle a simulated process uses for every interaction with the
// kernel: reading the clock, sleeping, and blocking on synchronization
// primitives. A Proc must only be used from within its own process function.
type Proc struct {
	k      *Kernel
	pid    int
	name   string
	resume chan struct{}
	done   chan struct{}
	exited bool
	killed bool
	daemon bool
}

// PID returns the kernel-unique process id.
func (p *Proc) PID() int { return p.pid }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports the current virtual time.
func (p *Proc) Now() time.Duration { return p.k.now }

// run is the goroutine body wrapping the user function.
func (p *Proc) run(fn func(p *Proc)) {
	defer func() {
		if r := recover(); r != nil && r != errKilled { //nolint:errorlint // sentinel identity
			// Re-panicking here would crash the whole test binary from a
			// foreign goroutine with a stack that is hard to attribute; wrap
			// with the process name instead so failures are diagnosable.
			p.exited = true
			p.k.tracef("proc %s panicked: %v", p.name, r)
			close(p.done)
			panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
		}
		p.exited = true
		close(p.done)
		p.k.tracef("proc %s exit", p.name)
		p.k.yield <- struct{}{}
	}()
	<-p.resume // wait for first scheduling
	if p.killed {
		// Killed before ever running (host crashed between Spawn and the
		// first scheduling): unwind without executing the body.
		panic(errKilled)
	}
	p.k.tracef("proc %s start", p.name)
	fn(p)
}

// RunTask implements Task: dequeued from the ready queue, the kernel hands
// control to the process goroutine and blocks until it parks or exits.
func (p *Proc) RunTask(k *Kernel) {
	if p.exited {
		return
	}
	k.current = p
	p.resume <- struct{}{}
	<-k.yield
	k.current = nil
}

// park returns control to the kernel and blocks until the process is
// resumed. If the kernel was shut down meanwhile, the process unwinds.
func (p *Proc) park() {
	p.k.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(errKilled)
	}
}

// yieldNow reschedules the process at the current instant, letting other
// ready processes run first. Useful to model round-robin CPU sharing.
func (p *Proc) Yield() {
	p.k.ready.push(p)
	p.park()
}

// wake makes a parked process runnable at the current instant.
func (p *Proc) wake() {
	if p.exited {
		return
	}
	p.k.ready.push(p)
}

// Sleep blocks the process for d of virtual time. Negative or zero durations
// yield the processor but do not advance the clock.
func (p *Proc) Sleep(d time.Duration) {
	if d <= 0 {
		p.Yield()
		return
	}
	p.k.scheduleTask(p.k.now+d, p)
	p.park()
}

// SleepUntil blocks until the virtual clock reaches t.
func (p *Proc) SleepUntil(t time.Duration) {
	if t <= p.k.now {
		p.Yield()
		return
	}
	p.k.scheduleTask(t, p)
	p.park()
}

// Done returns a channel closed when the process exits. It may be read from
// outside the simulation (e.g. by tests after Run returns).
func (p *Proc) Done() <-chan struct{} { return p.done }

// Exited reports whether the process function has returned.
func (p *Proc) Exited() bool { return p.exited }

// waiter represents one parked process waiting on a primitive, with
// cancelable timeout support. A waiter fires at most once; timedOut records
// whether the firing was a timeout, for the parked side to inspect on wake.
type waiter struct {
	p        *Proc
	fired    bool
	timedOut bool
	timer    Timer
}

func newWaiter(p *Proc) *waiter { return &waiter{p: p} }

// fire wakes the waiting process if it has not been woken yet, canceling any
// pending timeout. It reports whether this call performed the wakeup.
func (w *waiter) fire() bool {
	if w.fired {
		return false
	}
	w.fired = true
	w.timer.Stop()
	w.p.wake()
	return true
}

// setTimeout arms a timeout that fires the waiter after d. The timeout event
// references the waiter directly — no callback closure — and sets w.timedOut
// when it performs the wakeup.
func (w *waiter) setTimeout(d time.Duration) {
	k := w.p.k
	ev := k.newEvent(k.now + d)
	ev.w = w
	k.place(ev)
	w.timer = Timer{k: k, ev: ev, gen: ev.gen}
}
