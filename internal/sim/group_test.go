package sim

import (
	"errors"
	"testing"
	"time"
)

// pingPongGroup wires two partitions that volley a counter back and forth
// with one lookahead window of latency per hop, and returns the final
// virtual times and counter value.
func pingPongGroup(t *testing.T, workers, rounds int) (time.Duration, time.Duration, int) {
	t.Helper()
	const window = 3 * time.Millisecond
	g := NewGroup(2)
	g.SetWindow(window)

	count := 0
	var hook [2]func(payload any)
	for i := 0; i < 2; i++ {
		i := i
		p := g.Part(i)
		hook[i] = func(payload any) {
			n := payload.(int)
			count = n
			if n >= rounds {
				return
			}
			p.Send(1-i, p.K.Now()+window, n+1)
		}
		p.OnMessage = hook[i]
	}
	g.Part(0).K.Spawn("kick", func(p *Proc) {
		g.Part(0).Send(1, window, 1)
	})
	if err := g.Run(workers); err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	return g.Kernel(0).Now(), g.Kernel(1).Now(), count
}

func TestGroupPingPongDeterministicAcrossWorkers(t *testing.T) {
	t0, t1, count := pingPongGroup(t, 1, 10)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	for _, workers := range []int{2, 4, 8} {
		u0, u1, c := pingPongGroup(t, workers, 10)
		if u0 != t0 || u1 != t1 || c != count {
			t.Fatalf("workers=%d diverged: (%v,%v,%d) != (%v,%v,%d)",
				workers, u0, u1, c, t0, t1, count)
		}
	}
}

func TestGroupBoardLockstepRoster(t *testing.T) {
	for _, workers := range []int{1, 2} {
		g := NewGroup(2)
		g.SetWindow(5 * time.Millisecond)
		var done [2]time.Duration
		var got [2]string
		for i := 0; i < 2; i++ {
			i := i
			p := g.Part(i)
			name := string(rune('a' + i))
			p.K.Spawn("rank", func(pr *Proc) {
				b := p.Board("roster")
				b.SetExpected(2)
				b.Put(name, name+"-addr")
				for !b.Complete() {
					pr.Sleep(time.Millisecond)
				}
				peer := string(rune('a' + (1 - i)))
				got[i], _ = b.Get(peer)
				done[i] = p.K.Now()
			})
		}
		if err := g.Run(workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Both ranks put at t=0; lockstep exchanges at the first barrier, so
		// the 1ms poll wakes to a complete roster — far below the 5ms window.
		for i := 0; i < 2; i++ {
			if want := string(rune('a'+(1-i))) + "-addr"; got[i] != want {
				t.Fatalf("workers=%d rank %d read %q, want %q", workers, i, got[i], want)
			}
			if done[i] != time.Millisecond {
				t.Fatalf("workers=%d rank %d finished at %v, want 1ms", workers, i, done[i])
			}
		}
	}
}

func TestGroupDeadlockReported(t *testing.T) {
	g := NewGroup(2)
	g.SetWindow(time.Millisecond)
	stuckK := g.Kernel(0)
	g.Part(0).K.Spawn("stuck", func(p *Proc) {
		NewEvent(stuckK).Wait(p)
	})
	err := g.Run(2)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	g.Shutdown()
}

func TestGroupSinglePartitionRuns(t *testing.T) {
	g := NewGroup(1)
	ran := false
	g.Kernel(0).Spawn("p", func(p *Proc) {
		p.Sleep(time.Second)
		ran = true
	})
	if err := g.Run(4); err != nil {
		t.Fatal(err)
	}
	if !ran || g.Kernel(0).Now() != time.Second {
		t.Fatalf("ran=%v now=%v", ran, g.Kernel(0).Now())
	}
}

func TestGroupWindowRequired(t *testing.T) {
	g := NewGroup(2)
	if err := g.Run(1); err == nil {
		t.Fatal("Run without SetWindow should fail")
	}
}
