package sim

import "time"

// Semaphore is a counting semaphore for simulated processes.
type Semaphore struct {
	k       *Kernel
	count   int
	waiters []*waiter
}

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(k *Kernel, count int) *Semaphore {
	return &Semaphore{k: k, count: count}
}

// Acquire blocks the process until a unit is available, then takes it.
func (s *Semaphore) Acquire(p *Proc) {
	if s.count > 0 {
		s.count--
		return
	}
	w := newWaiter(p)
	s.waiters = append(s.waiters, w)
	p.park()
}

// TryAcquire takes a unit if one is immediately available.
func (s *Semaphore) TryAcquire() bool {
	if s.count > 0 {
		s.count--
		return true
	}
	return false
}

// Release returns one unit, waking the longest-blocked acquirer if any.
func (s *Semaphore) Release() {
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		if w.fire() {
			return
		}
	}
	s.count++
}

// Available reports the current count.
func (s *Semaphore) Available() int { return s.count }

// Mutex is a binary semaphore with lock semantics.
type Mutex struct{ s *Semaphore }

// NewMutex creates an unlocked mutex.
func NewMutex(k *Kernel) *Mutex { return &Mutex{s: NewSemaphore(k, 1)} }

// Lock blocks until the mutex is acquired.
func (m *Mutex) Lock(p *Proc) { m.s.Acquire(p) }

// Unlock releases the mutex.
func (m *Mutex) Unlock() { m.s.Release() }

// Event is a one-shot broadcast: processes wait until it is set; once set,
// waits return immediately.
type Event struct {
	k       *Kernel
	set     bool
	waiters []*waiter
}

// NewEvent creates an unset event.
func NewEvent(k *Kernel) *Event { return &Event{k: k} }

// IsSet reports whether the event has fired.
func (e *Event) IsSet() bool { return e.set }

// Set fires the event, waking all waiters. Idempotent.
func (e *Event) Set() {
	if e.set {
		return
	}
	e.set = true
	for _, w := range e.waiters {
		w.fire()
	}
	e.waiters = nil
}

// Wait blocks until the event is set.
func (e *Event) Wait(p *Proc) {
	if e.set {
		return
	}
	w := newWaiter(p)
	e.waiters = append(e.waiters, w)
	p.park()
}

// WaitTimeout blocks until the event is set or d elapses; it reports whether
// the event was set.
func (e *Event) WaitTimeout(p *Proc, d time.Duration) bool {
	if e.set {
		return true
	}
	if d == 0 {
		return false
	}
	w := newWaiter(p)
	e.waiters = append(e.waiters, w)
	if d > 0 {
		w.setTimeout(d)
	}
	p.park()
	return !w.timedOut
}

// Cond is a condition variable: Wait parks until a Signal or Broadcast.
// Unlike sync.Cond there is no associated lock; the single-threaded kernel
// makes check-then-wait atomic as long as no blocking call intervenes.
type Cond struct {
	k       *Kernel
	waiters []*waiter
}

// NewCond creates a condition variable.
func NewCond(k *Kernel) *Cond { return &Cond{k: k} }

// Wait parks the process until signaled.
func (c *Cond) Wait(p *Proc) {
	w := newWaiter(p)
	c.waiters = append(c.waiters, w)
	p.park()
}

// WaitTimeout parks until signaled or d elapses; reports whether a signal
// (not the timeout) woke the process.
func (c *Cond) WaitTimeout(p *Proc, d time.Duration) bool {
	if d == 0 {
		return false
	}
	w := newWaiter(p)
	c.waiters = append(c.waiters, w)
	if d > 0 {
		w.setTimeout(d)
	}
	p.park()
	// A fired-by-timeout waiter is dropped lazily; Signal skips fired entries.
	return !w.timedOut
}

// Signal wakes one waiting process, if any.
func (c *Cond) Signal() {
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		if w.fire() {
			return
		}
	}
}

// Broadcast wakes every waiting process.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		w.fire()
	}
}

// WaitGroup counts outstanding work items in virtual time.
type WaitGroup struct {
	k     *Kernel
	n     int
	event *Event
}

// NewWaitGroup creates a wait group with zero count.
func NewWaitGroup(k *Kernel) *WaitGroup {
	return &WaitGroup{k: k, event: NewEvent(k)}
}

// Add increments the counter by delta.
func (wg *WaitGroup) Add(delta int) {
	wg.n += delta
	if wg.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.n == 0 {
		wg.event.Set()
		wg.event = NewEvent(wg.k)
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.n == 0 {
		return
	}
	wg.event.Wait(p)
}
