package sim

import (
	"errors"
	"testing"
	"time"
)

func TestChanRendezvous(t *testing.T) {
	k := New()
	ch := NewChan[int](k, 0)
	var got int
	var sendDone, recvDone time.Duration
	k.Spawn("sender", func(p *Proc) {
		p.Sleep(2 * time.Second)
		if err := ch.Send(p, 42); err != nil {
			t.Errorf("Send: %v", err)
		}
		sendDone = p.Now()
	})
	k.Spawn("recver", func(p *Proc) {
		v, err := ch.Recv(p)
		if err != nil {
			t.Errorf("Recv: %v", err)
		}
		got = v
		recvDone = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
	if recvDone != 2*time.Second || sendDone != 2*time.Second {
		t.Fatalf("rendezvous times send=%v recv=%v, want 2s", sendDone, recvDone)
	}
}

func TestChanBufferedNonBlockingUntilFull(t *testing.T) {
	k := New()
	ch := NewChan[int](k, 2)
	var sentThird time.Duration
	k.Spawn("sender", func(p *Proc) {
		_ = ch.Send(p, 1)
		_ = ch.Send(p, 2)
		if p.Now() != 0 {
			t.Errorf("buffered sends blocked: now=%v", p.Now())
		}
		_ = ch.Send(p, 3) // blocks until a recv frees a slot
		sentThird = p.Now()
	})
	k.Spawn("recver", func(p *Proc) {
		p.Sleep(5 * time.Second)
		v, _ := ch.Recv(p)
		if v != 1 {
			t.Errorf("FIFO violated: got %d, want 1", v)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sentThird != 5*time.Second {
		t.Fatalf("third send completed at %v, want 5s", sentThird)
	}
	if ch.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (values 2,3)", ch.Len())
	}
}

func TestChanFIFOAcrossBlockedSenders(t *testing.T) {
	k := New()
	ch := NewChan[int](k, 1)
	var got []int
	k.Spawn("s1", func(p *Proc) { _ = ch.Send(p, 1); _ = ch.Send(p, 2) })
	k.Spawn("s2", func(p *Proc) { p.Sleep(time.Millisecond); _ = ch.Send(p, 3) })
	k.Spawn("r", func(p *Proc) {
		p.Sleep(time.Second)
		for i := 0; i < 3; i++ {
			v, err := ch.Recv(p)
			if err != nil {
				t.Errorf("Recv: %v", err)
			}
			got = append(got, v)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestChanCloseWakesReceivers(t *testing.T) {
	k := New()
	ch := NewChan[string](k, 0)
	var err1 error
	k.Spawn("recver", func(p *Proc) {
		_, err1 = ch.Recv(p)
	})
	k.Spawn("closer", func(p *Proc) {
		p.Sleep(time.Second)
		ch.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(err1, ErrClosed) {
		t.Fatalf("Recv after close = %v, want ErrClosed", err1)
	}
}

func TestChanCloseDrainsBufferFirst(t *testing.T) {
	k := New()
	ch := NewChan[int](k, 4)
	k.Spawn("p", func(p *Proc) {
		_ = ch.Send(p, 7)
		_ = ch.Send(p, 8)
		ch.Close()
		v, err := ch.Recv(p)
		if err != nil || v != 7 {
			t.Errorf("first drain: v=%d err=%v", v, err)
		}
		v, err = ch.Recv(p)
		if err != nil || v != 8 {
			t.Errorf("second drain: v=%d err=%v", v, err)
		}
		_, err = ch.Recv(p)
		if !errors.Is(err, ErrClosed) {
			t.Errorf("after drain err=%v, want ErrClosed", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChanSendOnClosed(t *testing.T) {
	k := New()
	ch := NewChan[int](k, 1)
	k.Spawn("p", func(p *Proc) {
		ch.Close()
		if err := ch.Send(p, 1); !errors.Is(err, ErrClosed) {
			t.Errorf("Send on closed = %v, want ErrClosed", err)
		}
		if err := ch.TrySend(1); !errors.Is(err, ErrClosed) {
			t.Errorf("TrySend on closed = %v, want ErrClosed", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChanRecvTimeout(t *testing.T) {
	k := New()
	ch := NewChan[int](k, 0)
	k.Spawn("p", func(p *Proc) {
		start := p.Now()
		_, err := ch.RecvTimeout(p, 3*time.Second)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
		if p.Now()-start != 3*time.Second {
			t.Errorf("timeout took %v, want 3s", p.Now()-start)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChanRecvTimeoutBeatenBySend(t *testing.T) {
	k := New()
	ch := NewChan[int](k, 0)
	k.Spawn("recver", func(p *Proc) {
		v, err := ch.RecvTimeout(p, 10*time.Second)
		if err != nil || v != 5 {
			t.Errorf("v=%d err=%v, want 5,nil", v, err)
		}
		if p.Now() != time.Second {
			t.Errorf("received at %v, want 1s", p.Now())
		}
	})
	k.Spawn("sender", func(p *Proc) {
		p.Sleep(time.Second)
		_ = ch.Send(p, 5)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// The canceled timeout must not wake anyone later.
	if k.Now() != time.Second {
		t.Fatalf("clock at %v after run, want 1s (timer not canceled?)", k.Now())
	}
}

func TestChanSendTimeout(t *testing.T) {
	k := New()
	ch := NewChan[int](k, 0)
	k.Spawn("p", func(p *Proc) {
		err := ch.SendTimeout(p, 1, 2*time.Second)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// The timed-out sender's value must not be delivered later.
	k2 := New()
	ch2 := NewChan[int](k2, 0)
	k2.Spawn("s", func(p *Proc) {
		_ = ch2.SendTimeout(p, 99, time.Second)
	})
	k2.Spawn("r", func(p *Proc) {
		p.Sleep(5 * time.Second)
		_, err := ch2.RecvTimeout(p, 0)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("stale value delivered after sender timed out: %v", err)
		}
	})
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChanTryOps(t *testing.T) {
	k := New()
	ch := NewChan[int](k, 1)
	if _, err := ch.TryRecv(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("TryRecv empty = %v, want ErrTimeout", err)
	}
	if err := ch.TrySend(1); err != nil {
		t.Fatalf("TrySend with space = %v", err)
	}
	if err := ch.TrySend(2); !errors.Is(err, ErrTimeout) {
		t.Fatalf("TrySend full = %v, want ErrTimeout", err)
	}
	v, err := ch.TryRecv()
	if err != nil || v != 1 {
		t.Fatalf("TryRecv = %d,%v", v, err)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	k := New()
	sem := NewSemaphore(k, 2)
	inFlight, maxInFlight := 0, 0
	for i := 0; i < 6; i++ {
		k.Spawn("worker", func(p *Proc) {
			sem.Acquire(p)
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			p.Sleep(time.Second)
			inFlight--
			sem.Release()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInFlight != 2 {
		t.Fatalf("max in flight = %d, want 2", maxInFlight)
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("6 jobs x 1s at width 2 took %v, want 3s", k.Now())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	k := New()
	sem := NewSemaphore(k, 1)
	if !sem.TryAcquire() {
		t.Fatal("TryAcquire with count 1 failed")
	}
	if sem.TryAcquire() {
		t.Fatal("TryAcquire with count 0 succeeded")
	}
	sem.Release()
	if sem.Available() != 1 {
		t.Fatalf("Available = %d, want 1", sem.Available())
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	k := New()
	mu := NewMutex(k)
	var holder int
	for i := 1; i <= 3; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			mu.Lock(p)
			holder = i
			p.Sleep(time.Second)
			if holder != i {
				t.Errorf("critical section violated: holder=%d, want %d", holder, i)
			}
			mu.Unlock()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("3 serialized sections took %v, want 3s", k.Now())
	}
}

func TestEventBroadcast(t *testing.T) {
	k := New()
	ev := NewEvent(k)
	woke := 0
	for i := 0; i < 5; i++ {
		k.Spawn("waiter", func(p *Proc) {
			ev.Wait(p)
			woke++
			if p.Now() != time.Second {
				t.Errorf("woke at %v, want 1s", p.Now())
			}
		})
	}
	k.Spawn("setter", func(p *Proc) {
		p.Sleep(time.Second)
		ev.Set()
		ev.Set() // idempotent
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 5 {
		t.Fatalf("woke = %d, want 5", woke)
	}
	if !ev.IsSet() {
		t.Fatal("IsSet = false after Set")
	}
}

func TestEventWaitAfterSetReturnsImmediately(t *testing.T) {
	k := New()
	ev := NewEvent(k)
	ev.Set()
	k.Spawn("p", func(p *Proc) {
		ev.Wait(p)
		if p.Now() != 0 {
			t.Errorf("Wait on set event advanced clock to %v", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventWaitTimeout(t *testing.T) {
	k := New()
	ev := NewEvent(k)
	k.Spawn("p", func(p *Proc) {
		if ev.WaitTimeout(p, time.Second) {
			t.Error("WaitTimeout reported set on unset event")
		}
		if p.Now() != time.Second {
			t.Errorf("timed out at %v, want 1s", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	k := New()
	c := NewCond(k)
	woke := 0
	for i := 0; i < 3; i++ {
		k.Spawn("waiter", func(p *Proc) {
			c.Wait(p)
			woke++
		})
	}
	k.Spawn("signaler", func(p *Proc) {
		p.Sleep(time.Second)
		c.Signal()
		p.Sleep(time.Second)
		c.Broadcast()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 3 {
		t.Fatalf("woke = %d, want 3", woke)
	}
}

func TestWaitGroup(t *testing.T) {
	k := New()
	wg := NewWaitGroup(k)
	wg.Add(3)
	var doneAt time.Duration
	for i := 1; i <= 3; i++ {
		i := i
		k.Spawn("worker", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Second)
			wg.Done()
		})
	}
	k.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 3*time.Second {
		t.Fatalf("WaitGroup released at %v, want 3s", doneAt)
	}
}

func TestWaitGroupZeroWaitDoesNotBlock(t *testing.T) {
	k := New()
	wg := NewWaitGroup(k)
	k.Spawn("p", func(p *Proc) {
		wg.Wait(p)
		if p.Now() != 0 {
			t.Errorf("Wait on zero wg advanced clock")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
