package sim

import (
	"errors"
	"time"
)

// ErrClosed is returned by channel operations on a closed channel.
var ErrClosed = errors.New("sim: channel closed")

// ErrTimeout is returned by timed channel operations that expire.
var ErrTimeout = errors.New("sim: operation timed out")

// Chan is a typed channel between simulated processes, with semantics close
// to Go channels but executing in virtual time: operations themselves take
// zero virtual time; blocking lasts until a peer acts.
//
// Capacity 0 gives rendezvous semantics; capacity > 0 gives a bounded buffer.
type Chan[T any] struct {
	k        *Kernel
	capacity int
	buf      fifo[T]
	senders  []*chanWaiter[T] // blocked senders, FIFO
	recvers  []*chanWaiter[T] // blocked receivers, FIFO
	closed   bool
}

type chanWaiter[T any] struct {
	w *waiter
	// for senders: value to hand off; for receivers: slot filled by sender.
	val       T
	ok        bool // receiver: value delivered (vs closed/timeout)
	delivered bool // sender: value was taken
}

// NewChan creates a channel bound to kernel k with the given capacity.
func NewChan[T any](k *Kernel, capacity int) *Chan[T] {
	if capacity < 0 {
		capacity = 0
	}
	return &Chan[T]{k: k, capacity: capacity}
}

// Len reports the number of buffered values.
func (c *Chan[T]) Len() int { return c.buf.len() }

// Cap reports the channel capacity.
func (c *Chan[T]) Cap() int { return c.capacity }

// Closed reports whether Close has been called.
func (c *Chan[T]) Closed() bool { return c.closed }

// Close marks the channel closed. Blocked receivers wake with ok=false once
// the buffer drains; blocked senders wake with ErrClosed. Close may be called
// from process or kernel context.
func (c *Chan[T]) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, sw := range c.senders {
		sw.w.fire()
	}
	c.senders = nil
	if c.buf.len() == 0 {
		for _, rw := range c.recvers {
			rw.ok = false
			rw.w.fire()
		}
		c.recvers = nil
	}
}

// popRecver removes and returns the first receiver that has not already been
// woken (e.g. by a timeout), or nil.
func (c *Chan[T]) popRecver() *chanWaiter[T] {
	for len(c.recvers) > 0 {
		rw := c.recvers[0]
		c.recvers = c.recvers[1:]
		if !rw.w.fired {
			return rw
		}
	}
	return nil
}

func (c *Chan[T]) popSender() *chanWaiter[T] {
	for len(c.senders) > 0 {
		sw := c.senders[0]
		c.senders = c.senders[1:]
		if !sw.w.fired {
			return sw
		}
	}
	return nil
}

// TrySend attempts a non-blocking send. It returns ErrClosed if the channel
// is closed, nil on success, and ErrTimeout (without blocking) if the value
// cannot be handed off immediately.
func (c *Chan[T]) TrySend(v T) error {
	if c.closed {
		return ErrClosed
	}
	if rw := c.popRecver(); rw != nil {
		rw.val, rw.ok = v, true
		rw.w.fire()
		return nil
	}
	if c.buf.len() < c.capacity {
		c.buf.push(v)
		return nil
	}
	return ErrTimeout
}

// Send delivers v, blocking the process in virtual time until a receiver or
// buffer space is available. It returns ErrClosed if the channel is (or
// becomes) closed.
func (c *Chan[T]) Send(p *Proc, v T) error {
	return c.SendTimeout(p, v, -1)
}

// SendTimeout is Send with a timeout; d < 0 means no timeout.
func (c *Chan[T]) SendTimeout(p *Proc, v T, d time.Duration) error {
	if err := c.TrySend(v); err == nil {
		return nil
	} else if errors.Is(err, ErrClosed) {
		return ErrClosed
	}
	if d == 0 {
		return ErrTimeout
	}
	sw := &chanWaiter[T]{w: newWaiter(p), val: v}
	c.senders = append(c.senders, sw)
	if d > 0 {
		sw.w.setTimeout(d)
	}
	p.park()
	switch {
	case sw.delivered:
		return nil
	case sw.w.timedOut:
		return ErrTimeout
	default: // woken by Close
		return ErrClosed
	}
}

// TryRecv attempts a non-blocking receive. ok reports whether a value was
// obtained; err is ErrClosed when the channel is closed and drained, and
// ErrTimeout when no value is immediately available.
func (c *Chan[T]) TryRecv() (v T, err error) {
	if c.buf.len() > 0 {
		v = c.buf.pop()
		// A blocked sender can now use the freed slot.
		if sw := c.popSender(); sw != nil {
			c.buf.push(sw.val)
			sw.delivered = true
			sw.w.fire()
		}
		return v, nil
	}
	// Rendezvous with a blocked sender (capacity 0 path).
	if sw := c.popSender(); sw != nil {
		sw.delivered = true
		sw.w.fire()
		return sw.val, nil
	}
	if c.closed {
		return v, ErrClosed
	}
	return v, ErrTimeout
}

// Recv blocks until a value is available or the channel is closed and
// drained (returning ErrClosed).
func (c *Chan[T]) Recv(p *Proc) (T, error) {
	return c.RecvTimeout(p, -1)
}

// RecvTimeout is Recv with a timeout; d < 0 means no timeout.
func (c *Chan[T]) RecvTimeout(p *Proc, d time.Duration) (T, error) {
	if v, err := c.TryRecv(); err == nil {
		return v, nil
	} else if errors.Is(err, ErrClosed) {
		var zero T
		return zero, ErrClosed
	}
	if d == 0 {
		var zero T
		return zero, ErrTimeout
	}
	rw := &chanWaiter[T]{w: newWaiter(p)}
	c.recvers = append(c.recvers, rw)
	if d > 0 {
		rw.w.setTimeout(d)
	}
	p.park()
	if rw.ok {
		return rw.val, nil
	}
	var zero T
	if rw.w.timedOut {
		return zero, ErrTimeout
	}
	return zero, ErrClosed
}
