package sim

import (
	"errors"
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	k := New()
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", k.Now())
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := New()
	var at time.Duration
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(3 * time.Second)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 3*time.Second {
		t.Fatalf("woke at %v, want 3s", at)
	}
}

func TestSleepZeroYields(t *testing.T) {
	k := New()
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i, s := range want {
		if order[i] != s {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Now() != 0 {
		t.Fatalf("clock advanced to %v on zero sleep", k.Now())
	}
}

func TestMultipleSleepersOrdered(t *testing.T) {
	k := New()
	var wakes []time.Duration
	for _, d := range []time.Duration{5 * time.Millisecond, 1 * time.Millisecond, 3 * time.Millisecond} {
		d := d
		k.Spawn("s", func(p *Proc) {
			p.Sleep(d)
			wakes = append(wakes, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(wakes) != 3 {
		t.Fatalf("got %d wakes", len(wakes))
	}
	for i := 1; i < len(wakes); i++ {
		if wakes[i] < wakes[i-1] {
			t.Fatalf("wakeups out of order: %v", wakes)
		}
	}
	if wakes[2] != 5*time.Millisecond {
		t.Fatalf("last wake at %v, want 5ms", wakes[2])
	}
}

func TestSleepUntil(t *testing.T) {
	k := New()
	k.Spawn("p", func(p *Proc) {
		p.SleepUntil(10 * time.Second)
		if p.Now() != 10*time.Second {
			t.Errorf("Now() = %v, want 10s", p.Now())
		}
		// SleepUntil in the past must not rewind the clock.
		p.SleepUntil(1 * time.Second)
		if p.Now() != 10*time.Second {
			t.Errorf("clock rewound to %v", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAfterTimerFiresAndStops(t *testing.T) {
	k := New()
	fired := 0
	k.After(time.Second, func() { fired++ })
	stopped := k.After(2*time.Second, func() { fired += 100 })
	if !stopped.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	if stopped.Stop() {
		t.Fatal("second Stop returned true")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if k.Now() != time.Second {
		t.Fatalf("clock at %v, want 1s", k.Now())
	}
}

func TestRunReturnsDeadlock(t *testing.T) {
	k := New()
	ch := NewChan[int](k, 0)
	k.Spawn("stuck", func(p *Proc) {
		_, _ = ch.Recv(p) // nobody will ever send
	})
	err := k.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run() = %v, want ErrDeadlock", err)
	}
	k.Shutdown()
}

func TestShutdownUnwindsParkedProcs(t *testing.T) {
	k := New()
	ch := NewChan[int](k, 0)
	p := k.Spawn("stuck", func(p *Proc) {
		_, _ = ch.Recv(p)
	})
	_ = k.Run()
	k.Shutdown()
	select {
	case <-p.Done():
	case <-time.After(time.Second):
		t.Fatal("process goroutine did not unwind after Shutdown")
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	k := New()
	ticks := 0
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Second)
			ticks++
		}
	})
	k.RunUntil(10*time.Second + 500*time.Millisecond)
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if k.Now() != 10*time.Second+500*time.Millisecond {
		t.Fatalf("clock at %v", k.Now())
	}
	k.Shutdown()
}

func TestDeterministicInterleaving(t *testing.T) {
	runOnce := func() []int {
		k := New()
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			k.Spawn("p", func(p *Proc) {
				p.Sleep(time.Duration(i%3) * time.Millisecond)
				order = append(order, i)
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := runOnce()
	for trial := 0; trial < 5; trial++ {
		got := runOnce()
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("nondeterministic order: %v vs %v", first, got)
			}
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := New()
	var childRan bool
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(time.Second)
		k.Spawn("child", func(c *Proc) {
			c.Sleep(time.Second)
			childRan = true
			if c.Now() != 2*time.Second {
				t.Errorf("child woke at %v, want 2s", c.Now())
			}
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestLiveCount(t *testing.T) {
	k := New()
	done := NewEvent(k)
	k.Spawn("waiter", func(p *Proc) { done.Wait(p) })
	k.Spawn("setter", func(p *Proc) {
		p.Sleep(time.Second)
		if k.Live() != 2 {
			t.Errorf("Live() = %d mid-run, want 2", k.Live())
		}
		done.Set()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Live() != 0 {
		t.Fatalf("Live() = %d after Run, want 0", k.Live())
	}
}

func TestEventTieBreakBySequence(t *testing.T) {
	k := New()
	var order []string
	k.After(time.Second, func() { order = append(order, "first") })
	k.After(time.Second, func() { order = append(order, "second") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "first" || order[1] != "second" {
		t.Fatalf("same-time events fired out of scheduling order: %v", order)
	}
}
