package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Conservative parallel coupling of several kernels.
//
// A Group runs N independent kernels — the partitions — in lockstep windows
// of virtual time. The classic conservative-DES argument makes this exact:
// if every event that crosses from one partition to another is delayed by at
// least the lookahead W (here: the minimum latency of any boundary link),
// then no event executed inside the window (H, H+W] can affect another
// partition before H+W — so all partitions may run the window concurrently
// and exchange the accumulated cross-partition messages at the barrier.
//
// Determinism does not depend on the number of worker threads: the window
// schedule is a pure function of virtual time, each partition's window is
// simulated single-threaded by its own kernel, and the messages collected at
// a barrier are merged in a canonical order (timestamp, source partition,
// source emission sequence) before delivery. Running with 1 worker or
// GOMAXPROCS workers therefore produces bit-identical results.
//
// Startup is special-cased: distributed jobs begin with a roster exchange
// (every rank publishes its contact address and waits for the full set),
// which in a monolithic simulation resolves through shared memory with zero
// latency. To reproduce that exactly, a Group starts in a per-instant
// lockstep phase — the window target is the globally earliest pending event,
// so messages posted at an instant are visible before any later instant runs
// — until every registered bulletin Board is complete, and only then switches
// to full lookahead windows.
type Group struct {
	parts    []*GroupKernel
	window   time.Duration
	horizon  time.Duration
	lockstep bool
	ran      bool

	boardMu sync.Mutex
	boards  map[string]*Board
}

// NewGroup creates a group of n fresh kernels, one per partition.
func NewGroup(n int) *Group {
	if n < 1 {
		panic("sim: NewGroup needs at least one partition")
	}
	g := &Group{lockstep: true, boards: make(map[string]*Board)}
	for i := 0; i < n; i++ {
		g.parts = append(g.parts, &GroupKernel{g: g, idx: i, K: New()})
	}
	return g
}

// Parts reports the number of partitions.
func (g *Group) Parts() int { return len(g.parts) }

// Part returns partition i's coupling handle.
func (g *Group) Part(i int) *GroupKernel { return g.parts[i] }

// Kernel returns partition i's kernel.
func (g *Group) Kernel(i int) *Kernel { return g.parts[i].K }

// SetWindow fixes the lookahead window. It must be positive and set before
// Run when the group has more than one partition; the network coupler derives
// it from the minimum boundary-link latency.
func (g *Group) SetWindow(w time.Duration) {
	if w <= 0 {
		panic("sim: lookahead window must be positive")
	}
	g.window = w
}

// Window reports the configured lookahead.
func (g *Group) Window() time.Duration { return g.window }

// Msg is one cross-partition message: a payload that becomes visible to the
// destination partition as a kernel event at virtual instant At. Messages are
// exchanged only at window barriers; the lookahead guarantee is that At never
// precedes the next barrier, so no partition's past is ever disturbed.
type Msg struct {
	At      time.Duration
	Src     int
	Dst     int
	Seq     uint64
	Payload any
}

// GroupKernel couples one kernel into its group: an outbox for messages
// emitted during the current window and the delivery hook invoked (in kernel
// context, at Msg.At) for each message addressed to this partition.
type GroupKernel struct {
	g   *Group
	idx int
	K   *Kernel

	// OnMessage, when set, handles non-board payloads delivered to this
	// partition. It runs in kernel context at the message's timestamp.
	OnMessage func(payload any)

	seq uint64
	out []Msg
}

// Index reports the partition index.
func (p *GroupKernel) Index() int { return p.idx }

// Send queues a message for partition dst, to surface there at virtual
// instant at. It must be called from this partition's kernel context (during
// a window); delivery happens at the next barrier.
func (p *GroupKernel) Send(dst int, at time.Duration, payload any) {
	p.seq++
	p.out = append(p.out, Msg{At: at, Src: p.idx, Dst: dst, Seq: p.seq, Payload: payload})
}

// Run drives all partitions to completion using up to workers OS threads
// (clamped to the partition count; values below 1 mean 1). It returns
// ErrDeadlock if progress stops while processes are still alive in any
// partition.
func (g *Group) Run(workers int) error {
	if g.ran {
		return fmt.Errorf("sim: group already ran")
	}
	g.ran = true
	if len(g.parts) > 1 && g.window <= 0 {
		return fmt.Errorf("sim: group has no lookahead window; call SetWindow before Run")
	}
	if len(g.parts) == 1 {
		return g.parts[0].K.Run()
	}
	for {
		target, ok := g.nextTarget()
		if !ok {
			break
		}
		g.runWindow(workers, target)
		g.horizon = target
		delivered := g.exchange()
		if g.lockstep && g.boardsComplete() {
			g.lockstep = false
		}
		if delivered == 0 && !g.anyPending() {
			break
		}
	}
	live := 0
	for _, p := range g.parts {
		live += p.K.Live()
	}
	if live > 0 {
		return fmt.Errorf("%w (%d live across %d partitions)", ErrDeadlock, live, len(g.parts))
	}
	return nil
}

// nextTarget picks the next barrier instant. In the lockstep phase it is the
// globally earliest pending event (so same-instant cross-partition messages
// are exchanged before any later instant runs); afterwards it is one
// lookahead window past the previous horizon — or the earliest pending event
// when every partition is idle beyond that, which skips empty windows without
// violating lookahead (nothing can happen before the earliest event, and its
// consequences cross at least W later).
func (g *Group) nextTarget() (time.Duration, bool) {
	earliest, any := time.Duration(0), false
	for _, p := range g.parts {
		if at, ok := p.K.NextEventAt(); ok && (!any || at < earliest) {
			earliest, any = at, true
		}
	}
	if !any {
		return 0, false
	}
	if g.lockstep {
		return earliest, true
	}
	target := g.horizon + g.window
	if earliest > target {
		target = earliest
	}
	return target, true
}

// runWindow advances every partition to target, spreading partitions over
// min(workers, len(parts)) goroutines. With one worker the partitions run
// sequentially in index order on the calling goroutine — the parallel-mode
// single-core baseline.
func (g *Group) runWindow(workers int, target time.Duration) {
	if workers > len(g.parts) {
		workers = len(g.parts)
	}
	if workers <= 1 {
		for _, p := range g.parts {
			p.K.RunUntil(target)
		}
		return
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(g.parts) {
					return
				}
				g.parts[i].K.RunUntil(target)
			}
		}()
	}
	wg.Wait()
}

// exchange merges every partition's outbox in canonical order and delivers
// the messages, returning how many there were. It runs single-threaded
// between windows; the WaitGroup barrier in runWindow establishes the
// happens-before edges the race detector needs.
func (g *Group) exchange() int {
	var msgs []Msg
	for _, p := range g.parts {
		msgs = append(msgs, p.out...)
		p.out = p.out[:0]
	}
	sort.Slice(msgs, func(i, j int) bool {
		if msgs[i].At != msgs[j].At {
			return msgs[i].At < msgs[j].At
		}
		if msgs[i].Src != msgs[j].Src {
			return msgs[i].Src < msgs[j].Src
		}
		return msgs[i].Seq < msgs[j].Seq
	})
	for _, m := range msgs {
		g.deliver(m)
	}
	return len(msgs)
}

func (g *Group) deliver(m Msg) {
	p := g.parts[m.Dst]
	if bm, ok := m.Payload.(boardMsg); ok {
		g.applyBoard(m.Dst, bm)
		return
	}
	fn := p.OnMessage
	if fn == nil {
		panic(fmt.Sprintf("sim: partition %d received a message but has no OnMessage handler", m.Dst))
	}
	payload := m.Payload
	p.K.Schedule(m.At, func() { fn(payload) })
}

// anyPending reports whether any partition still has pending work.
func (g *Group) anyPending() bool {
	for _, p := range g.parts {
		if _, ok := p.K.NextEventAt(); ok {
			return true
		}
	}
	return false
}

// Shutdown tears down every partition's kernel (see Kernel.Shutdown). Call it
// when abandoning a group, e.g. after an application error.
func (g *Group) Shutdown() {
	for _, p := range g.parts {
		p.K.Shutdown()
	}
}

// ---- bulletin boards ----

// Board is a replicated key/value registry used for distributed-job rosters:
// each partition holds a replica, writes broadcast to all other replicas at
// the next barrier, and while any board is incomplete the group stays in the
// per-instant lockstep phase so that roster visibility matches the
// monolithic simulation exactly.
type Board struct {
	name string
	reps []boardRep
}

type boardRep struct {
	entries  map[string]string
	expected int
}

func (r *boardRep) complete() bool {
	return r.expected > 0 && len(r.entries) >= r.expected
}

// boardMsg replicates one board write to a peer partition.
type boardMsg struct {
	board    string
	key, val string
	expected int
	hasExp   bool
}

// BoardView is one partition's handle on a board. Its methods satisfy
// transport.BulletinBoard by shape; reads are local, writes replicate at the
// next barrier.
type BoardView struct {
	b *Board
	p *GroupKernel
}

// Board returns (creating on first use) the partition's view of the named
// board. Safe to call from concurrent partition windows.
func (p *GroupKernel) Board(name string) *BoardView {
	g := p.g
	g.boardMu.Lock()
	b := g.boards[name]
	if b == nil {
		b = &Board{name: name, reps: make([]boardRep, len(g.parts))}
		for i := range b.reps {
			b.reps[i].entries = make(map[string]string)
		}
		g.boards[name] = b
	}
	g.boardMu.Unlock()
	return &BoardView{b: b, p: p}
}

// SetExpected declares how many entries the board will carry when complete.
func (v *BoardView) SetExpected(n int) {
	v.b.reps[v.p.idx].expected = n
	v.broadcast(boardMsg{board: v.b.name, expected: n, hasExp: true})
}

// Put publishes one entry: immediately visible locally, visible to every
// other partition after the next barrier.
func (v *BoardView) Put(key, value string) {
	v.b.reps[v.p.idx].entries[key] = value
	v.broadcast(boardMsg{board: v.b.name, key: key, val: value})
}

// Get reads an entry from the local replica.
func (v *BoardView) Get(key string) (string, bool) {
	val, ok := v.b.reps[v.p.idx].entries[key]
	return val, ok
}

// Complete reports whether the local replica holds all expected entries.
func (v *BoardView) Complete() bool {
	rep := &v.b.reps[v.p.idx]
	return rep.complete()
}

func (v *BoardView) broadcast(m boardMsg) {
	now := v.p.K.Now()
	for i := range v.p.g.parts {
		if i != v.p.idx {
			v.p.Send(i, now, m)
		}
	}
}

// applyBoard merges one replicated write into dst's replica. It runs at the
// barrier (single-threaded); readers only observe the replica from their own
// kernel's events afterwards, so no event scheduling is needed.
func (g *Group) applyBoard(dst int, m boardMsg) {
	g.boardMu.Lock()
	b := g.boards[m.board]
	if b == nil {
		b = &Board{name: m.board, reps: make([]boardRep, len(g.parts))}
		for i := range b.reps {
			b.reps[i].entries = make(map[string]string)
		}
		g.boards[m.board] = b
	}
	g.boardMu.Unlock()
	rep := &b.reps[dst]
	if m.hasExp {
		rep.expected = m.expected
	} else {
		rep.entries[m.key] = m.val
	}
}

// boardsComplete reports whether every replica of every board is complete
// (vacuously true with no boards), which ends the lockstep bootstrap phase.
func (g *Group) boardsComplete() bool {
	g.boardMu.Lock()
	defer g.boardMu.Unlock()
	for _, b := range g.boards {
		for i := range b.reps {
			if !b.reps[i].complete() {
				return false
			}
		}
	}
	return true
}
