package sim

import "testing"

// TestRandDeterministic pins the kernel RNG contract: the stream is a pure
// function of the seed, so two kernels seeded alike produce identical draws
// and differently seeded kernels diverge.
func TestRandDeterministic(t *testing.T) {
	a, b := New(), New()
	a.Seed(42)
	b.Seed(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Rand(), b.Rand(); av != bv {
			t.Fatalf("draw %d: %#x != %#x with equal seeds", i, av, bv)
		}
	}
	c := New()
	c.Seed(43)
	a.Seed(42)
	same := true
	for i := 0; i < 10; i++ {
		if a.Rand() != c.Rand() {
			same = false
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical 10-draw prefixes")
	}
}

// TestRandSelfSeeds checks an unseeded kernel still yields a usable,
// deterministic stream (it self-seeds on first use) rather than zeros.
func TestRandSelfSeeds(t *testing.T) {
	a, b := New(), New()
	zeros := 0
	for i := 0; i < 10; i++ {
		av, bv := a.Rand(), b.Rand()
		if av != bv {
			t.Fatalf("draw %d: unseeded kernels disagree: %#x != %#x", i, av, bv)
		}
		if av == 0 {
			zeros++
		}
	}
	if zeros == 10 {
		t.Error("unseeded stream is all zeros")
	}
}

// TestRandSpread is a coarse quality check on the splitmix64 mix: 1000
// draws should hit distinct values and both halves of the range.
func TestRandSpread(t *testing.T) {
	k := New()
	k.Seed(7)
	seen := make(map[uint64]bool)
	low, high := 0, 0
	for i := 0; i < 1000; i++ {
		v := k.Rand()
		if seen[v] {
			t.Fatalf("duplicate draw %#x within 1000", v)
		}
		seen[v] = true
		if v < 1<<63 {
			low++
		} else {
			high++
		}
	}
	if low == 0 || high == 0 {
		t.Errorf("draws never crossed the midpoint: %d low, %d high", low, high)
	}
}
