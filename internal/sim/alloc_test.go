package sim

import (
	"testing"
	"time"
)

// TestStepZeroAlloc pins the kernel's hot-path contract: once pools are
// warm, a Step on the Sleep/wake path allocates nothing — events come from
// the free list, wakeups reference the process directly. The observability
// layer must keep it that way: with no observer attached there is nothing
// to pay.
func TestStepZeroAlloc(t *testing.T) {
	k := New()
	k.SpawnDaemon("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Microsecond)
		}
	})
	for i := 0; i < 100; i++ { // warm the event pool
		k.Step()
	}
	if avg := testing.AllocsPerRun(1000, func() { k.Step() }); avg != 0 {
		t.Errorf("kernel Step allocates %.2f objects/op in steady state, want 0", avg)
	}
	k.Shutdown()
}
