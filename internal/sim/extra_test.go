package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestYieldRoundRobins(t *testing.T) {
	k := New()
	var order []string
	for _, name := range []string{"a", "b"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			for i := 0; i < 3; i++ {
				order = append(order, fmt.Sprintf("%s%d", name, i))
				p.Yield()
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(order, " ")
	want := "a0 b0 a1 b1 a2 b2"
	if got != want {
		t.Fatalf("interleaving = %q, want %q", got, want)
	}
}

func TestDaemonsDoNotBlockRun(t *testing.T) {
	k := New()
	served := 0
	ch := NewChan[int](k, 0)
	k.SpawnDaemon("server", func(p *Proc) {
		for {
			if _, err := ch.Recv(p); err != nil {
				return
			}
			served++
		}
	})
	k.Spawn("client", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Second)
			_ = ch.Send(p, i)
		}
	})
	// Run must return nil even though the daemon is parked forever.
	if err := k.Run(); err != nil {
		t.Fatalf("Run with parked daemon = %v", err)
	}
	if served != 3 {
		t.Fatalf("served = %d", served)
	}
	if k.Live() != 0 {
		t.Fatalf("Live = %d (daemons must not count)", k.Live())
	}
	k.Shutdown()
}

func TestTraceCallback(t *testing.T) {
	k := New()
	var lines []string
	k.Trace = func(at time.Duration, format string, args ...interface{}) {
		lines = append(lines, fmt.Sprintf("%v "+format, append([]interface{}{at}, args...)...))
	}
	k.Spawn("worker", func(p *Proc) { p.Sleep(time.Second) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "worker start") || !strings.Contains(joined, "worker exit") {
		t.Fatalf("trace missing lifecycle lines:\n%s", joined)
	}
}

func TestProcAccessors(t *testing.T) {
	k := New()
	p := k.Spawn("named", func(p *Proc) {
		if p.Name() != "named" {
			t.Errorf("Name = %q", p.Name())
		}
		if p.PID() == 0 {
			t.Error("PID = 0")
		}
		if p.Kernel() != k {
			t.Error("Kernel mismatch")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !p.Exited() {
		t.Fatal("Exited = false after Run")
	}
}

func TestStepGranularity(t *testing.T) {
	k := New()
	k.Spawn("p", func(p *Proc) { p.Sleep(time.Second) })
	steps := 0
	for k.Step() {
		steps++
		if steps > 10 {
			t.Fatal("runaway stepping")
		}
	}
	// At least: initial resume + timer fire + final resume.
	if steps < 3 {
		t.Fatalf("steps = %d", steps)
	}
	if !k.Step() == false {
		t.Fatal("Step after drain should be false")
	}
}

func TestShutdownIdempotent(t *testing.T) {
	k := New()
	k.Spawn("p", func(p *Proc) {})
	_ = k.Run()
	k.Shutdown()
	k.Shutdown() // second call must be a no-op
	if k.Step() {
		t.Fatal("Step after Shutdown did work")
	}
}

func TestChanLenCapClosed(t *testing.T) {
	k := New()
	ch := NewChan[int](k, 3)
	if ch.Cap() != 3 || ch.Len() != 0 || ch.Closed() {
		t.Fatal("fresh channel state wrong")
	}
	_ = ch.TrySend(1)
	if ch.Len() != 1 {
		t.Fatalf("Len = %d", ch.Len())
	}
	ch.Close()
	if !ch.Closed() {
		t.Fatal("Closed = false")
	}
	ch.Close() // idempotent
	// Negative capacity clamps to zero (rendezvous).
	ch2 := NewChan[int](k, -5)
	if ch2.Cap() != 0 {
		t.Fatalf("Cap = %d", ch2.Cap())
	}
}

func TestWaitGroupPanicsOnNegative(t *testing.T) {
	k := New()
	wg := NewWaitGroup(k)
	defer func() {
		if recover() == nil {
			t.Fatal("negative WaitGroup did not panic")
		}
	}()
	wg.Done()
}

func TestRunUntilWithNoWorkReturns(t *testing.T) {
	k := New()
	k.RunUntil(time.Hour)
	if k.Now() != 0 {
		t.Fatalf("clock moved to %v with no work", k.Now())
	}
}
