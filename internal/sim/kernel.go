// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock and runs simulated processes, each of
// which is an ordinary Go function executing on its own goroutine. Scheduling
// is cooperative and strictly sequential: exactly one process runs at a time,
// and control returns to the kernel whenever a process blocks on a kernel
// primitive (Sleep, channel operations, semaphores, ...). This yields
// deterministic, reproducible runs regardless of GOMAXPROCS, which is what the
// wide-area cluster experiments require: parallel speedup is measured in
// virtual time, not wall-clock time.
//
// The design follows the classic process-interaction style of SimPy/CSIM:
// an event queue ordered by (time, sequence) drives timer wakeups, and a FIFO
// ready queue holds processes unblocked at the current instant.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// ErrDeadlock is returned by Run when live processes remain but no event can
// ever wake them.
var ErrDeadlock = errors.New("sim: deadlock: processes blocked with empty event queue")

// errKilled is panicked inside parked processes when the kernel shuts down.
var errKilled = errors.New("sim: process killed by kernel shutdown")

// event is a scheduled callback on the virtual timeline.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
	// canceled events stay in the heap but are skipped when popped.
	canceled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Kernel is a discrete-event simulator instance. It is not safe for
// concurrent use from multiple goroutines except through its own process
// scheduling: all simulated code runs under the kernel's control.
type Kernel struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	ready   []*Proc // FIFO of processes runnable at the current instant
	procs   map[int]*Proc
	nextPID int
	current *Proc
	yield   chan struct{} // signaled by a process when it parks or exits
	stopped bool
	// Trace, when non-nil, receives a line for every process start/exit and
	// every Sleep wakeup. Used by experiment harnesses to render timelines.
	Trace func(at time.Duration, format string, args ...interface{})
}

// New creates an empty simulation kernel with the clock at zero.
func New() *Kernel {
	return &Kernel{
		procs: make(map[int]*Proc),
		yield: make(chan struct{}),
	}
}

// Now reports the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// schedule enqueues fn to run at virtual time at (>= now).
func (k *Kernel) schedule(at time.Duration, fn func()) *event {
	if at < k.now {
		at = k.now
	}
	k.seq++
	ev := &event{at: at, seq: k.seq, fn: fn}
	heap.Push(&k.events, ev)
	return ev
}

// After schedules fn to run after delay d of virtual time. It returns a
// handle that can cancel the callback. After must only be called from kernel
// context (inside an event callback) or before Run; simulated processes
// should use Proc.Sleep or timers instead.
func (k *Kernel) After(d time.Duration, fn func()) *Timer {
	ev := k.schedule(k.now+d, fn)
	return &Timer{ev: ev}
}

// Timer is a cancelable scheduled callback.
type Timer struct{ ev *event }

// Stop cancels the timer if it has not fired. It reports whether the
// callback was prevented from running.
func (t *Timer) Stop() bool {
	if t.ev == nil || t.ev.canceled {
		return false
	}
	t.ev.canceled = true
	return true
}

// Spawn creates a new simulated process running fn and makes it runnable at
// the current virtual time. fn receives the process handle used for all
// blocking operations.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, fn, false)
}

// SpawnDaemon creates a daemon process: one that provides a service forever
// (link pumps, relay servers, gatekeepers). Daemons do not count as live
// work — Run returns successfully once only daemons remain blocked, and a
// run with daemons parked is not a deadlock.
func (k *Kernel) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, fn, true)
}

func (k *Kernel) spawn(name string, fn func(p *Proc), daemon bool) *Proc {
	k.nextPID++
	p := &Proc{
		k:      k,
		pid:    k.nextPID,
		name:   name,
		daemon: daemon,
		resume: make(chan struct{}),
		done:   make(chan struct{}),
	}
	k.procs[p.pid] = p
	go p.run(fn)
	k.ready = append(k.ready, p)
	return p
}

// runReady resumes the next ready process and waits for it to park or exit.
func (k *Kernel) runReady() {
	p := k.ready[0]
	copy(k.ready, k.ready[1:])
	k.ready = k.ready[:len(k.ready)-1]
	if p.exited {
		return
	}
	k.current = p
	p.resume <- struct{}{}
	<-k.yield
	k.current = nil
}

// Step executes the next unit of work: either resumes a ready process or
// advances the clock to the next event and fires it. It reports whether any
// work was performed.
func (k *Kernel) Step() bool {
	if k.stopped {
		return false
	}
	if len(k.ready) > 0 {
		k.runReady()
		return true
	}
	for k.events.Len() > 0 {
		ev := heap.Pop(&k.events).(*event)
		if ev.canceled {
			continue
		}
		if ev.at > k.now {
			k.now = ev.at
		}
		ev.fn()
		return true
	}
	return false
}

// Run drives the simulation until no work remains. It returns nil when every
// process has exited, and ErrDeadlock when live processes remain blocked with
// no pending events.
func (k *Kernel) Run() error {
	for k.Step() {
	}
	if k.liveProcs() > 0 && !k.stopped {
		return fmt.Errorf("%w (%d live)", ErrDeadlock, k.liveProcs())
	}
	return nil
}

// RunUntil drives the simulation until virtual time t is reached, all work is
// exhausted, or the kernel is stopped. The clock is left at min(t, last event
// time) or exactly t if work remains beyond it.
func (k *Kernel) RunUntil(t time.Duration) {
	for !k.stopped {
		if len(k.ready) > 0 {
			k.runReady()
			continue
		}
		if k.events.Len() == 0 {
			break
		}
		next := k.events[0].at
		if next > t {
			k.now = t
			break
		}
		k.Step()
	}
}

func (k *Kernel) liveProcs() int {
	n := 0
	for _, p := range k.procs {
		if !p.exited && !p.daemon {
			n++
		}
	}
	return n
}

// Live reports the number of non-daemon processes that have not exited.
func (k *Kernel) Live() int { return k.liveProcs() }

// Shutdown terminates the simulation: every parked process is resumed with a
// kill signal, unwinding its stack so goroutines do not leak. The kernel
// cannot be used after Shutdown.
func (k *Kernel) Shutdown() {
	if k.stopped {
		return
	}
	k.stopped = true
	for _, p := range k.procs {
		if p.exited || p == k.current {
			continue
		}
		p.killed = true
		p.resume <- struct{}{}
		<-k.yield
	}
}

func (k *Kernel) tracef(format string, args ...interface{}) {
	if k.Trace != nil {
		k.Trace(k.now, format, args...)
	}
}
