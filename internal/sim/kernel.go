// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock and runs simulated processes, each of
// which is an ordinary Go function executing on its own goroutine. Scheduling
// is cooperative and strictly sequential: exactly one process runs at a time,
// and control returns to the kernel whenever a process blocks on a kernel
// primitive (Sleep, channel operations, semaphores, ...). This yields
// deterministic, reproducible runs regardless of GOMAXPROCS, which is what the
// wide-area cluster experiments require: parallel speedup is measured in
// virtual time, not wall-clock time.
//
// The design follows the classic process-interaction style of SimPy/CSIM:
// an event queue ordered by (time, sequence) drives timer wakeups, and a FIFO
// ready queue holds work runnable at the current instant.
//
// # Fast path
//
// The hot paths are allocation-free in steady state: event records are
// recycled through a kernel-owned free list, the Sleep/timeout paths wake
// their target directly instead of allocating a callback closure, events
// scheduled for the current instant bypass the timer heap entirely, and the
// timer heap itself is a 4-ary index-aware heap so Timer.Stop removes its
// event in O(log n) instead of leaking it until popped. Kernel-aware
// subsystems (the simnet link pumps) can also enter the ready queue as
// inline Tasks, avoiding the two goroutine handoffs a parked process costs.
package sim

import (
	"errors"
	"fmt"
	"time"
)

// ErrDeadlock is returned by Run when live processes remain but no event can
// ever wake them.
var ErrDeadlock = errors.New("sim: deadlock: processes blocked with empty event queue")

// errKilled is panicked inside parked processes when the kernel shuts down.
var errKilled = errors.New("sim: process killed by kernel shutdown")

// Event queue position markers for event.idx.
const (
	idxNone = -1 // not queued (free, or already fired)
	idxDue  = -2 // in the same-instant due queue
)

// maxEventPool bounds the recycled-event free list.
const maxEventPool = 1 << 14

// event is a scheduled occurrence on the virtual timeline. Exactly one of
// task, w, h, or fn describes what firing it does:
//
//   - task: post the task (a parked process or an inline continuation) to
//     the ready queue — the closure-free Sleep/wakeup path;
//   - w: fire the waiter as a timeout — the closure-free timeout path;
//   - h: invoke OnEvent inline — the closure-free After path;
//   - fn: invoke the callback (the general After path).
//
// Events are pooled: gen increments on every recycle so a stale Timer
// handle can detect that its event has moved on.
type event struct {
	at  time.Duration
	seq uint64
	idx int32 // heap position, idxDue, or idxNone
	gen uint32
	// canceled events are skipped when dequeued; heap residents are removed
	// eagerly instead, so only due-queue entries ever carry this flag.
	canceled bool
	task     Task
	w        *waiter
	h        EventHandler
	fn       func()
}

// Task is one unit of ready-queue work at the current instant: a parked
// process to resume, or an inline continuation that runs on the kernel
// goroutine without a context switch (used by the virtual network's link
// pumps). RunTask must return control to the kernel promptly; it executes
// in kernel context, not process context.
type Task interface{ RunTask(k *Kernel) }

// EventHandler is the allocation-free analogue of an After callback: when
// the event fires, OnEvent runs inline in kernel context. Hot-path
// subsystems implement it on pooled objects (e.g. in-flight network
// segments) to avoid a closure per event.
type EventHandler interface{ OnEvent(k *Kernel) }

// eventHeap is a 4-ary min-heap ordered by (at, seq) that maintains each
// event's position in event.idx, so arbitrary events can be removed when a
// timer is stopped. 4-ary halves the tree depth of the binary heap and keeps
// child scans within one cache line of pointers.
type eventHeap struct{ a []*event }

func eventLess(x, y *event) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

func (h *eventHeap) len() int { return len(h.a) }

func (h *eventHeap) peek() *event {
	if len(h.a) == 0 {
		return nil
	}
	return h.a[0]
}

func (h *eventHeap) push(ev *event) {
	i := len(h.a)
	h.a = append(h.a, ev)
	ev.idx = int32(i)
	h.siftUp(i)
}

func (h *eventHeap) pop() *event {
	root := h.a[0]
	last := len(h.a) - 1
	moved := h.a[last]
	h.a[last] = nil
	h.a = h.a[:last]
	if last > 0 {
		h.a[0] = moved
		moved.idx = 0
		h.siftDown(0)
	}
	root.idx = idxNone
	return root
}

// remove deletes an event at an arbitrary heap position (Timer.Stop).
func (h *eventHeap) remove(ev *event) {
	i := int(ev.idx)
	last := len(h.a) - 1
	moved := h.a[last]
	h.a[last] = nil
	h.a = h.a[:last]
	if i < last {
		h.a[i] = moved
		moved.idx = int32(i)
		if !h.siftDown(i) {
			h.siftUp(i)
		}
	}
	ev.idx = idxNone
}

func (h *eventHeap) siftUp(i int) {
	ev := h.a[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := h.a[parent]
		if !eventLess(ev, p) {
			break
		}
		h.a[i] = p
		p.idx = int32(i)
		i = parent
	}
	h.a[i] = ev
	ev.idx = int32(i)
}

// siftDown reports whether the event moved.
func (h *eventHeap) siftDown(i int) bool {
	ev := h.a[i]
	start := i
	n := len(h.a)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if eventLess(h.a[c], h.a[min]) {
				min = c
			}
		}
		if !eventLess(h.a[min], ev) {
			break
		}
		h.a[i] = h.a[min]
		h.a[i].idx = int32(i)
		i = min
	}
	h.a[i] = ev
	ev.idx = int32(i)
	return i != start
}

// fifo is a slice-backed FIFO with an amortized-O(1) pop: a head index
// advances instead of shifting elements, and the backing slice is compacted
// only once the dead prefix reaches half its length.
type fifo[T any] struct {
	buf  []T
	head int
}

func (q *fifo[T]) push(v T) { q.buf = append(q.buf, v) }

func (q *fifo[T]) len() int { return len(q.buf) - q.head }

func (q *fifo[T]) pop() T {
	var zero T
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head++
	switch {
	case q.head == len(q.buf):
		q.buf = q.buf[:0]
		q.head = 0
	case q.head >= 64 && q.head*2 >= len(q.buf):
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = zero
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	return v
}

// Kernel is a discrete-event simulator instance. It is not safe for
// concurrent use from multiple goroutines except through its own process
// scheduling: all simulated code runs under the kernel's control.
type Kernel struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	due     fifo[*event] // events scheduled for the current instant
	ready   fifo[Task]   // work runnable at the current instant, FIFO
	free    []*event     // recycled event records
	procs   map[int]*Proc
	nextPID int
	current *Proc
	yield   chan struct{} // signaled by a process when it parks or exits
	stopped bool
	rng     uint64 // splitmix64 state; zero until Seed (Rand self-seeds to 1)
	// Trace, when non-nil, receives a line for every process start/exit and
	// every Sleep wakeup. Used by experiment harnesses to render timelines.
	Trace func(at time.Duration, format string, args ...interface{})
}

// New creates an empty simulation kernel with the clock at zero.
func New() *Kernel {
	return &Kernel{
		procs: make(map[int]*Proc),
		yield: make(chan struct{}),
	}
}

// Now reports the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Seed initializes the kernel's random stream. Simulations that want
// distinct-but-reproducible randomness (retry jitter, randomized placement)
// call Seed once before Run; leaving it unseeded is equivalent to Seed(1).
func (k *Kernel) Seed(s uint64) { k.rng = s }

// Rand returns the next value of the kernel's deterministic random stream
// (splitmix64). Because all simulated code runs under the kernel's
// cooperative scheduler, draw order — and therefore every value — is a pure
// function of the seed and the simulation itself, independent of GOMAXPROCS.
// This is the only randomness source simulated code may use: anything global
// (math/rand, crypto/rand, wall clock) would break reproducibility.
func (k *Kernel) Rand() uint64 {
	if k.rng == 0 {
		k.rng = 1
	}
	k.rng += 0x9e3779b97f4a7c15
	z := k.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// newEvent takes an event record from the pool (or allocates one) and stamps
// it with the next sequence number.
func (k *Kernel) newEvent(at time.Duration) *event {
	k.seq++
	var ev *event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at, ev.seq = at, k.seq
	return ev
}

// release recycles a fired or canceled event. The generation bump
// invalidates any Timer still holding the record.
func (k *Kernel) release(ev *event) {
	ev.gen++
	ev.task, ev.w, ev.h, ev.fn = nil, nil, nil, nil
	ev.idx = idxNone
	ev.canceled = false
	if len(k.free) < maxEventPool {
		k.free = append(k.free, ev)
	}
}

// place queues a stamped event: the timer heap for future instants, the due
// FIFO for the current one. Due entries always carry larger sequence numbers
// than any heap resident at the current instant (the clock only reaches an
// instant by popping its first heap event), so draining heap events at the
// current time before the due queue preserves strict (at, seq) firing order.
func (k *Kernel) place(ev *event) {
	if ev.at <= k.now {
		ev.at = k.now
		ev.idx = idxDue
		k.due.push(ev)
		return
	}
	k.events.push(ev)
}

// Schedule enqueues fn to run at virtual time at; instants at or before the
// current clock fire at the current instant. It is the timestamped form of
// After, used by the parallel-group coupler to inject cross-partition events
// at their precomputed arrival times.
func (k *Kernel) Schedule(at time.Duration, fn func()) {
	k.schedule(at, fn)
}

// NextEventAt reports the earliest instant at which this kernel has pending
// work: the current time when runnable tasks or due events exist, otherwise
// the timestamp of the earliest scheduled event. ok is false when the kernel
// is fully idle.
func (k *Kernel) NextEventAt() (at time.Duration, ok bool) {
	if k.ready.len() > 0 || k.due.len() > 0 {
		return k.now, true
	}
	if top := k.events.peek(); top != nil {
		return top.at, true
	}
	return 0, false
}

// schedule enqueues fn to run at virtual time at (>= now).
func (k *Kernel) schedule(at time.Duration, fn func()) *event {
	ev := k.newEvent(at)
	ev.fn = fn
	k.place(ev)
	return ev
}

// scheduleTask enqueues t to be posted to the ready queue at virtual time
// at, with no callback allocation.
func (k *Kernel) scheduleTask(at time.Duration, t Task) *event {
	ev := k.newEvent(at)
	ev.task = t
	k.place(ev)
	return ev
}

// After schedules fn to run after delay d of virtual time. It returns a
// handle that can cancel the callback. After must only be called from kernel
// context (inside an event callback) or before Run; simulated processes
// should use Proc.Sleep or timers instead.
func (k *Kernel) After(d time.Duration, fn func()) *Timer {
	ev := k.schedule(k.now+d, fn)
	return &Timer{k: k, ev: ev, gen: ev.gen}
}

// AfterTask schedules t to be posted to the ready queue after delay d, with
// no closure or Timer allocation. It is the hot-path analogue of
// k.After(d, func() { k.Post(t) }).
func (k *Kernel) AfterTask(d time.Duration, t Task) {
	k.scheduleTask(k.now+d, t)
}

// AfterEvent schedules h.OnEvent to run inline after delay d, with no
// closure or Timer allocation. It is the hot-path analogue of
// k.After(d, func() { h.OnEvent(k) }).
func (k *Kernel) AfterEvent(d time.Duration, h EventHandler) {
	ev := k.newEvent(k.now + d)
	ev.h = h
	k.place(ev)
}

// Post appends t to the ready queue: it will run at the current virtual
// instant, after work already queued.
func (k *Kernel) Post(t Task) { k.ready.push(t) }

// Timer is a cancelable scheduled callback.
type Timer struct {
	k   *Kernel
	ev  *event
	gen uint32
}

// Stop cancels the timer if it has not fired. It reports whether the
// callback was prevented from running. Stopping a pending timer removes its
// event from the queue immediately, so long-lived simulations that arm and
// cancel many timeouts do not accumulate dead events.
func (t *Timer) Stop() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.canceled {
		return false
	}
	if ev.idx >= 0 {
		t.k.events.remove(ev)
		t.k.release(ev)
		return true
	}
	// Due-queue entries are skipped (and recycled) when dequeued.
	ev.canceled = true
	return true
}

// Spawn creates a new simulated process running fn and makes it runnable at
// the current virtual time. fn receives the process handle used for all
// blocking operations.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, fn, false)
}

// SpawnDaemon creates a daemon process: one that provides a service forever
// (link pumps, relay servers, gatekeepers). Daemons do not count as live
// work — Run returns successfully once only daemons remain blocked, and a
// run with daemons parked is not a deadlock.
func (k *Kernel) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return k.spawn(name, fn, true)
}

func (k *Kernel) spawn(name string, fn func(p *Proc), daemon bool) *Proc {
	k.nextPID++
	p := &Proc{
		k:      k,
		pid:    k.nextPID,
		name:   name,
		daemon: daemon,
		resume: make(chan struct{}),
		done:   make(chan struct{}),
	}
	k.procs[p.pid] = p
	go p.run(fn)
	k.ready.push(p)
	return p
}

// nextEvent dequeues the next event in strict (at, seq) order, advancing the
// clock when the timeline moves forward. Canceled due-queue entries are
// skipped and recycled. It returns nil when no events remain.
func (k *Kernel) nextEvent() *event {
	for {
		// Heap residents at the current instant predate every due entry.
		if top := k.events.peek(); top != nil && top.at <= k.now {
			return k.events.pop()
		}
		if k.due.len() > 0 {
			ev := k.due.pop()
			if ev.canceled {
				k.release(ev)
				continue
			}
			return ev
		}
		if top := k.events.peek(); top != nil {
			ev := k.events.pop()
			k.now = ev.at
			return ev
		}
		return nil
	}
}

// fire dispatches a dequeued event and recycles its record.
func (k *Kernel) fire(ev *event) {
	switch {
	case ev.task != nil:
		t := ev.task
		k.release(ev)
		k.ready.push(t)
	case ev.w != nil:
		w := ev.w
		k.release(ev)
		if !w.fired {
			w.fired = true
			w.timedOut = true
			w.p.wake()
		}
	case ev.h != nil:
		h := ev.h
		k.release(ev)
		h.OnEvent(k)
	default:
		fn := ev.fn
		k.release(ev)
		fn()
	}
}

// Step executes the next unit of work: either runs a ready task or advances
// the clock to the next event and fires it. It reports whether any work was
// performed.
func (k *Kernel) Step() bool {
	if k.stopped {
		return false
	}
	if k.ready.len() > 0 {
		k.ready.pop().RunTask(k)
		return true
	}
	if ev := k.nextEvent(); ev != nil {
		k.fire(ev)
		return true
	}
	return false
}

// Run drives the simulation until no work remains. It returns nil when every
// process has exited, and ErrDeadlock when live processes remain blocked with
// no pending events.
func (k *Kernel) Run() error {
	for k.Step() {
	}
	if k.liveProcs() > 0 && !k.stopped {
		return fmt.Errorf("%w (%d live)", ErrDeadlock, k.liveProcs())
	}
	return nil
}

// RunUntil drives the simulation until virtual time t is reached, all work is
// exhausted, or the kernel is stopped. The clock is left at min(t, last event
// time) or exactly t if work remains beyond it.
func (k *Kernel) RunUntil(t time.Duration) {
	for !k.stopped {
		if k.ready.len() > 0 {
			k.ready.pop().RunTask(k)
			continue
		}
		// Same-instant work (heap residents at now, then due entries) fires
		// without consulting the horizon: the clock does not move.
		if top := k.events.peek(); top != nil && top.at <= k.now {
			k.fire(k.events.pop())
			continue
		}
		if k.due.len() > 0 {
			ev := k.due.pop()
			if ev.canceled {
				k.release(ev)
				continue
			}
			k.fire(ev)
			continue
		}
		top := k.events.peek()
		if top == nil {
			break
		}
		if top.at > t {
			k.now = t
			break
		}
		ev := k.events.pop()
		k.now = ev.at
		k.fire(ev)
	}
}

func (k *Kernel) liveProcs() int {
	n := 0
	for _, p := range k.procs {
		if !p.exited && !p.daemon {
			n++
		}
	}
	return n
}

// Live reports the number of non-daemon processes that have not exited.
func (k *Kernel) Live() int { return k.liveProcs() }

// Events reports the total number of events stamped since the kernel was
// created — every timer, wakeup, and network hop increments it exactly once.
// It is the simulator's natural work metric: fleet-scale throughput is
// reported as stamped events per wall-clock second.
func (k *Kernel) Events() uint64 { return k.seq }

// Kill terminates a single process: it is resumed with a kill signal and
// unwinds its stack immediately (deferred functions run), exactly like one
// process's share of Shutdown. Pending timers referencing the process become
// no-ops. Kill models a host crash taking a process down mid-flight.
//
// Kill must be called from kernel context — an event callback (After), an
// inline Task, or before Run — never from a running process: the kernel
// goroutine must be parked on the scheduler loop to hand control to the dying
// process's unwinding.
func (k *Kernel) Kill(p *Proc) {
	if p == nil || p.exited || p.killed {
		return
	}
	if k.current != nil {
		panic("sim: Kill must be called from kernel context, not from a process")
	}
	p.killed = true
	p.resume <- struct{}{}
	<-k.yield
}

// Shutdown terminates the simulation: every parked process is resumed with a
// kill signal, unwinding its stack so goroutines do not leak. The kernel
// cannot be used after Shutdown.
func (k *Kernel) Shutdown() {
	if k.stopped {
		return
	}
	k.stopped = true
	for _, p := range k.procs {
		if p.exited || p == k.current {
			continue
		}
		p.killed = true
		p.resume <- struct{}{}
		<-k.yield
	}
}

func (k *Kernel) tracef(format string, args ...interface{}) {
	if k.Trace != nil {
		k.Trace(k.now, format, args...)
	}
}
