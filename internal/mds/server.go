package mds

import (
	"encoding/binary"
	"fmt"
	"io"

	"nxcluster/internal/nexus"
	"nxcluster/internal/transport"
)

// Wire operation codes.
const (
	opAdd    = byte(1)
	opSearch = byte(2)
	opGet    = byte(3)
	opModify = byte(4)
	opDelete = byte(5)

	statusOK  = byte(0)
	statusErr = byte(1)
)

// Server exposes a Directory over the transport layer, one request per
// connection.
type Server struct {
	Dir      *Directory
	listener transport.Listener
}

// NewServer wraps a directory.
func NewServer(dir *Directory) *Server { return &Server{Dir: dir} }

// Serve binds and accepts; it blocks its process.
func (s *Server) Serve(env transport.Env, port int, ready func(addr string)) error {
	l, err := env.Listen(port)
	if err != nil {
		return fmt.Errorf("mds: listen: %w", err)
	}
	s.listener = l
	if ready != nil {
		ready(l.Addr())
	}
	for {
		c, err := l.Accept(env)
		if err != nil {
			return nil
		}
		conn := c
		env.SpawnService("mds:conn", func(e transport.Env) { s.handle(e, conn) })
	}
}

// Close shuts the listener down.
func (s *Server) Close(env transport.Env) {
	if s.listener != nil {
		_ = s.listener.Close(env)
	}
}

func (s *Server) handle(env transport.Env, c transport.Conn) {
	defer c.Close(env)
	st := transport.Stream{Env: env, Conn: c}
	req, err := readFrame(st)
	if err != nil {
		return
	}
	op, err := req.GetInt32()
	if err != nil {
		return
	}
	resp := nexus.NewBuffer()
	switch byte(op) {
	case opAdd, opModify:
		dn, attrs, err := decodeEntryBody(req)
		if err == nil {
			if byte(op) == opAdd {
				err = s.Dir.Add(dn, attrs)
			} else {
				err = s.Dir.Modify(dn, attrs)
			}
		}
		writeStatus(resp, err)
	case opDelete:
		dn, err := req.GetString()
		if err == nil {
			err = s.Dir.Delete(dn)
		}
		writeStatus(resp, err)
	case opGet:
		dn, err := req.GetString()
		var e *Entry
		if err == nil {
			e, err = s.Dir.Get(dn)
		}
		writeStatus(resp, err)
		if err == nil {
			encodeEntry(resp, e)
		}
	case opSearch:
		base, err1 := req.GetString()
		fstr, err2 := req.GetString()
		var f Filter
		err := err1
		if err == nil {
			err = err2
		}
		if err == nil && fstr != "" {
			f, err = ParseFilter(fstr)
		}
		var entries []*Entry
		if err == nil {
			entries, err = s.Dir.Search(base, f)
		}
		writeStatus(resp, err)
		if err == nil {
			resp.PutInt32(int32(len(entries)))
			for _, e := range entries {
				encodeEntry(resp, e)
			}
		}
	default:
		writeStatus(resp, fmt.Errorf("mds: unknown op %d", op))
	}
	_ = writeFrame(st, resp)
}

func writeStatus(b *nexus.Buffer, err error) {
	if err != nil {
		b.PutBool(false)
		b.PutString(err.Error())
		return
	}
	b.PutBool(true)
}

func encodeEntry(b *nexus.Buffer, e *Entry) {
	b.PutString(e.DN)
	b.PutInt32(int32(len(e.Attrs)))
	for k, vs := range e.Attrs {
		b.PutString(k)
		b.PutInt32(int32(len(vs)))
		for _, v := range vs {
			b.PutString(v)
		}
	}
}

func decodeEntry(b *nexus.Buffer) (*Entry, error) {
	dn, err := b.GetString()
	if err != nil {
		return nil, err
	}
	n, err := b.GetInt32()
	if err != nil {
		return nil, err
	}
	e := &Entry{DN: dn, Attrs: make(map[string][]string, n)}
	for i := int32(0); i < n; i++ {
		k, err := b.GetString()
		if err != nil {
			return nil, err
		}
		m, err := b.GetInt32()
		if err != nil {
			return nil, err
		}
		vs := make([]string, m)
		for j := range vs {
			if vs[j], err = b.GetString(); err != nil {
				return nil, err
			}
		}
		e.Attrs[k] = vs
	}
	return e, nil
}

func decodeEntryBody(b *nexus.Buffer) (string, map[string][]string, error) {
	e, err := decodeEntry(b)
	if err != nil {
		return "", nil, err
	}
	return e.DN, e.Attrs, nil
}

// readFrame reads a length-prefixed buffer.
func readFrame(st transport.Stream) (*nexus.Buffer, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(st, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > 16<<20 {
		return nil, fmt.Errorf("mds: frame too large (%d)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(st, body); err != nil {
		return nil, err
	}
	return nexus.FromBytes(body), nil
}

// writeFrame writes a length-prefixed buffer.
func writeFrame(st transport.Stream, b *nexus.Buffer) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(b.Len()))
	if _, err := st.Write(hdr[:]); err != nil {
		return err
	}
	_, err := st.Write(b.Bytes())
	return err
}

// Client talks to a remote MDS server.
type Client struct {
	// Addr is the server's "host:port".
	Addr string
}

func (c Client) roundTrip(env transport.Env, req *nexus.Buffer) (*nexus.Buffer, error) {
	conn, err := env.Dial(c.Addr)
	if err != nil {
		return nil, fmt.Errorf("mds: dial %s: %w", c.Addr, err)
	}
	defer conn.Close(env)
	st := transport.Stream{Env: env, Conn: conn}
	if err := writeFrame(st, req); err != nil {
		return nil, err
	}
	resp, err := readFrame(st)
	if err != nil {
		return nil, err
	}
	ok, err := resp.GetBool()
	if err != nil {
		return nil, err
	}
	if !ok {
		msg, _ := resp.GetString()
		return nil, fmt.Errorf("mds: server error: %s", msg)
	}
	return resp, nil
}

// Add publishes an entry.
func (c Client) Add(env transport.Env, dn string, attrs map[string][]string) error {
	req := nexus.NewBuffer()
	req.PutInt32(int32(opAdd))
	encodeEntry(req, &Entry{DN: dn, Attrs: attrs})
	_, err := c.roundTrip(env, req)
	return err
}

// Modify updates an entry's attributes.
func (c Client) Modify(env transport.Env, dn string, attrs map[string][]string) error {
	req := nexus.NewBuffer()
	req.PutInt32(int32(opModify))
	encodeEntry(req, &Entry{DN: dn, Attrs: attrs})
	_, err := c.roundTrip(env, req)
	return err
}

// Delete removes an entry.
func (c Client) Delete(env transport.Env, dn string) error {
	req := nexus.NewBuffer()
	req.PutInt32(int32(opDelete))
	req.PutString(dn)
	_, err := c.roundTrip(env, req)
	return err
}

// Get fetches one entry.
func (c Client) Get(env transport.Env, dn string) (*Entry, error) {
	req := nexus.NewBuffer()
	req.PutInt32(int32(opGet))
	req.PutString(dn)
	resp, err := c.roundTrip(env, req)
	if err != nil {
		return nil, err
	}
	return decodeEntry(resp)
}

// Search queries entries under base with an optional filter string.
func (c Client) Search(env transport.Env, base, filter string) ([]*Entry, error) {
	req := nexus.NewBuffer()
	req.PutInt32(int32(opSearch))
	req.PutString(base)
	req.PutString(filter)
	resp, err := c.roundTrip(env, req)
	if err != nil {
		return nil, err
	}
	n, err := resp.GetInt32()
	if err != nil {
		return nil, err
	}
	out := make([]*Entry, 0, n)
	for i := int32(0); i < n; i++ {
		e, err := decodeEntry(resp)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}
