package mds

import (
	"testing"
	"time"
)

func TestPublisherRefreshAndExpiry(t *testing.T) {
	row := func(name, status string) StatusRow {
		return StatusRow{Name: name, Attrs: map[string][]string{"status": {status}}}
	}
	cases := []struct {
		name string
		ttl  time.Duration
		// steps publish rows at successive times; wantAlive is the set of
		// host names expected to survive the final step.
		steps []struct {
			at   time.Duration
			rows []StatusRow
		}
		wantAlive  []string
		wantPruned int // pruned on the final step
	}{
		{
			name: "refresh keeps entries alive",
			ttl:  3 * time.Second,
			steps: []struct {
				at   time.Duration
				rows []StatusRow
			}{
				{1 * time.Second, []StatusRow{row("a", "up"), row("b", "up")}},
				{2 * time.Second, []StatusRow{row("a", "up"), row("b", "up")}},
				{6 * time.Second, []StatusRow{row("a", "up"), row("b", "down")}},
			},
			wantAlive: []string{"a", "b"},
		},
		{
			name: "stale entry pruned past TTL",
			ttl:  3 * time.Second,
			steps: []struct {
				at   time.Duration
				rows []StatusRow
			}{
				{1 * time.Second, []StatusRow{row("a", "up"), row("b", "up")}},
				{2 * time.Second, []StatusRow{row("a", "up")}},
				{6 * time.Second, []StatusRow{row("a", "up")}},
			},
			wantAlive:  []string{"a"},
			wantPruned: 1,
		},
		{
			name: "zero TTL never prunes",
			ttl:  0,
			steps: []struct {
				at   time.Duration
				rows []StatusRow
			}{
				{1 * time.Second, []StatusRow{row("a", "up"), row("b", "up")}},
				{100 * time.Second, []StatusRow{row("a", "up")}},
			},
			wantAlive: []string{"a", "b"},
		},
		{
			name: "exactly at TTL boundary survives",
			ttl:  5 * time.Second,
			steps: []struct {
				at   time.Duration
				rows []StatusRow
			}{
				{1 * time.Second, []StatusRow{row("a", "up"), row("b", "up")}},
				{6 * time.Second, []StatusRow{row("a", "up")}},
			},
			wantAlive: []string{"a", "b"}, // b's age is exactly TTL, not past it
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := NewDirectory()
			p := NewPublisher(dir, "ou=monitor, o=grid", tc.ttl)
			var pruned int
			for _, st := range tc.steps {
				pruned = p.Publish(st.at, st.rows)
			}
			if pruned != tc.wantPruned {
				t.Fatalf("final prune count = %d, want %d", pruned, tc.wantPruned)
			}
			got, err := dir.Search("ou=monitor, o=grid", Eq("status", "*"))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.wantAlive) {
				t.Fatalf("alive = %d entries, want %d: %+v", len(got), len(tc.wantAlive), got)
			}
			for i, name := range tc.wantAlive {
				wantDN, _ := normalizeDN("hn=" + name + ", ou=monitor, o=grid")
				if got[i].DN != wantDN {
					t.Fatalf("entry %d DN = %q, want %q", i, got[i].DN, wantDN)
				}
			}
		})
	}
}

func TestPublisherStampsAndNormalizes(t *testing.T) {
	dir := NewDirectory()
	p := NewPublisher(dir, "ou=monitor, o=grid", time.Minute)
	// Mixed-case host names normalize into the DN key but not the value;
	// repeated publishes upsert the same entry.
	rows := []StatusRow{{Name: "ETL-O2K", Attrs: map[string][]string{
		"status": {"up"}, "load": {"3"},
	}}}
	p.Publish(7*time.Second, rows)
	p.Publish(9*time.Second, rows)
	if n := dir.Len(); n != 1 {
		t.Fatalf("directory has %d entries, want 1 (upsert)", n)
	}
	e, err := dir.Get("HN=ETL-O2K, OU=monitor, O=grid") // key case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if got := e.First("lastupdate"); got != "9000000000" {
		t.Fatalf("lastupdate = %q, want 9000000000", got)
	}
	if got := e.First("load"); got != "3" {
		t.Fatalf("load = %q, want 3", got)
	}
	// A malformed name (a comma creates an empty DN component) is skipped,
	// not fatal.
	p.Publish(10*time.Second, []StatusRow{{Name: "bad,", Attrs: nil}})
	if n := dir.Len(); n != 1 {
		t.Fatalf("directory has %d entries after bad row, want 1", n)
	}
}

func TestPublisherPruneDoesNotTouchForeignEntries(t *testing.T) {
	dir := NewDirectory()
	// An entry published by someone else (the RMF allocator) under the same
	// base must survive the monitor's pruning.
	if err := dir.Add("hn=foreign, ou=monitor, o=grid", map[string][]string{
		"objectclass": {"resource"},
	}); err != nil {
		t.Fatal(err)
	}
	p := NewPublisher(dir, "ou=monitor, o=grid", time.Second)
	p.Publish(1*time.Second, []StatusRow{{Name: "mine", Attrs: map[string][]string{"status": {"up"}}}})
	p.Publish(10*time.Second, nil) // "mine" goes stale and is pruned
	if _, err := dir.Get("hn=mine, ou=monitor, o=grid"); err == nil {
		t.Fatal("stale own entry survived")
	}
	if _, err := dir.Get("hn=foreign, ou=monitor, o=grid"); err != nil {
		t.Fatalf("foreign entry pruned: %v", err)
	}
}
