// Package mds implements a Grid Information Service in the mold of the
// Globus MDS: a hierarchical directory of entries with attributes,
// searchable with LDAP-style filters, served over the transport layer. The
// RMF resource allocator publishes resource records here (host, cluster,
// processor count, load) and queries them when selecting resources for a
// job request.
package mds

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ErrNotFound is returned when a DN does not exist.
var ErrNotFound = errors.New("mds: entry not found")

// ErrFilter reports a malformed filter expression.
var ErrFilter = errors.New("mds: bad filter")

// Entry is one directory record.
type Entry struct {
	// DN is the distinguished name, most-specific first:
	// "hn=rwcp-sun, ou=rwcp, o=grid".
	DN string
	// Attrs maps attribute names (lower-cased) to values.
	Attrs map[string][]string
}

// Clone deep-copies the entry.
func (e *Entry) Clone() *Entry {
	c := &Entry{DN: e.DN, Attrs: make(map[string][]string, len(e.Attrs))}
	for k, vs := range e.Attrs {
		c.Attrs[k] = append([]string(nil), vs...)
	}
	return c
}

// First returns the first value of an attribute, or "".
func (e *Entry) First(attr string) string {
	vs := e.Attrs[strings.ToLower(attr)]
	if len(vs) == 0 {
		return ""
	}
	return vs[0]
}

// Int returns the first value of an attribute as an integer, or def.
func (e *Entry) Int(attr string, def int) int {
	v := e.First(attr)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

// normalizeDN canonicalizes component spacing and case of the keys.
func normalizeDN(dn string) (string, error) {
	parts := strings.Split(dn, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return "", fmt.Errorf("mds: empty DN component in %q", dn)
		}
		kv := strings.SplitN(p, "=", 2)
		if len(kv) != 2 || strings.TrimSpace(kv[0]) == "" {
			return "", fmt.Errorf("mds: DN component %q is not key=value", p)
		}
		out = append(out, strings.ToLower(strings.TrimSpace(kv[0]))+"="+strings.TrimSpace(kv[1]))
	}
	return strings.Join(out, ","), nil
}

// Directory is an in-memory hierarchical store. It is safe for concurrent
// use from real-TCP goroutines; in the simulator the kernel serializes
// access anyway.
type Directory struct {
	mu      sync.Mutex
	entries map[string]*Entry
}

// NewDirectory creates an empty directory.
func NewDirectory() *Directory {
	return &Directory{entries: make(map[string]*Entry)}
}

// Add inserts or replaces an entry. Attribute keys are lower-cased.
func (d *Directory) Add(dn string, attrs map[string][]string) error {
	norm, err := normalizeDN(dn)
	if err != nil {
		return err
	}
	e := &Entry{DN: norm, Attrs: make(map[string][]string, len(attrs))}
	for k, vs := range attrs {
		e.Attrs[strings.ToLower(k)] = append([]string(nil), vs...)
	}
	d.mu.Lock()
	d.entries[norm] = e
	d.mu.Unlock()
	return nil
}

// Modify updates attributes of an existing entry (set semantics per key).
func (d *Directory) Modify(dn string, attrs map[string][]string) error {
	norm, err := normalizeDN(dn)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[norm]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, dn)
	}
	for k, vs := range attrs {
		e.Attrs[strings.ToLower(k)] = append([]string(nil), vs...)
	}
	return nil
}

// Delete removes an entry.
func (d *Directory) Delete(dn string) error {
	norm, err := normalizeDN(dn)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.entries[norm]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, dn)
	}
	delete(d.entries, norm)
	return nil
}

// Get returns a copy of the entry at dn.
func (d *Directory) Get(dn string) (*Entry, error) {
	norm, err := normalizeDN(dn)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[norm]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, dn)
	}
	return e.Clone(), nil
}

// Search returns copies of entries under base (inclusive) matching the
// filter, sorted by DN for determinism. An empty base searches the whole
// tree; a nil filter matches everything.
func (d *Directory) Search(base string, f Filter) ([]*Entry, error) {
	var suffix string
	if base != "" {
		norm, err := normalizeDN(base)
		if err != nil {
			return nil, err
		}
		suffix = norm
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []*Entry
	for dn, e := range d.entries {
		if suffix != "" && dn != suffix && !strings.HasSuffix(dn, ","+suffix) {
			continue
		}
		if f != nil && !f.Matches(e) {
			continue
		}
		out = append(out, e.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DN < out[j].DN })
	return out, nil
}

// Len reports the entry count.
func (d *Directory) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// Filter matches entries.
type Filter interface {
	Matches(e *Entry) bool
	String() string
}

type eqFilter struct{ attr, val string }

func (f eqFilter) Matches(e *Entry) bool {
	for _, v := range e.Attrs[f.attr] {
		if f.val == "*" || strings.EqualFold(v, f.val) {
			return true
		}
	}
	return false
}
func (f eqFilter) String() string { return "(" + f.attr + "=" + f.val + ")" }

type cmpFilter struct {
	attr string
	op   string // ">=" or "<="
	val  int
}

func (f cmpFilter) Matches(e *Entry) bool {
	for _, v := range e.Attrs[f.attr] {
		n, err := strconv.Atoi(v)
		if err != nil {
			continue
		}
		if f.op == ">=" && n >= f.val {
			return true
		}
		if f.op == "<=" && n <= f.val {
			return true
		}
	}
	return false
}
func (f cmpFilter) String() string { return "(" + f.attr + f.op + strconv.Itoa(f.val) + ")" }

type andFilter []Filter

func (f andFilter) Matches(e *Entry) bool {
	for _, sub := range f {
		if !sub.Matches(e) {
			return false
		}
	}
	return true
}
func (f andFilter) String() string { return combine("&", f) }

type orFilter []Filter

func (f orFilter) Matches(e *Entry) bool {
	for _, sub := range f {
		if sub.Matches(e) {
			return true
		}
	}
	return false
}
func (f orFilter) String() string { return combine("|", f) }

type notFilter struct{ sub Filter }

func (f notFilter) Matches(e *Entry) bool { return !f.sub.Matches(e) }
func (f notFilter) String() string        { return "(!" + f.sub.String() + ")" }

func combine(op string, fs []Filter) string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(op)
	for _, f := range fs {
		b.WriteString(f.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Eq builds an equality filter; val "*" tests presence.
func Eq(attr, val string) Filter { return eqFilter{strings.ToLower(attr), val} }

// Ge builds an attr>=n filter.
func Ge(attr string, n int) Filter { return cmpFilter{strings.ToLower(attr), ">=", n} }

// Le builds an attr<=n filter.
func Le(attr string, n int) Filter { return cmpFilter{strings.ToLower(attr), "<=", n} }

// And combines filters conjunctively.
func And(fs ...Filter) Filter { return andFilter(fs) }

// Or combines filters disjunctively.
func Or(fs ...Filter) Filter { return orFilter(fs) }

// Not negates a filter.
func Not(f Filter) Filter { return notFilter{f} }

// ParseFilter parses an LDAP-style filter:
// (&(objectclass=resource)(freecpus>=4)(!(site=etl))).
func ParseFilter(s string) (Filter, error) {
	p := &filterParser{in: s}
	f, err := p.parse()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("%w: trailing input in %q", ErrFilter, s)
	}
	return f, nil
}

type filterParser struct {
	in  string
	pos int
}

func (p *filterParser) parse() (Filter, error) {
	if p.pos >= len(p.in) || p.in[p.pos] != '(' {
		return nil, fmt.Errorf("%w: expected '(' at %d", ErrFilter, p.pos)
	}
	p.pos++
	if p.pos >= len(p.in) {
		return nil, fmt.Errorf("%w: truncated", ErrFilter)
	}
	switch p.in[p.pos] {
	case '&', '|':
		op := p.in[p.pos]
		p.pos++
		var subs []Filter
		for p.pos < len(p.in) && p.in[p.pos] == '(' {
			sub, err := p.parse()
			if err != nil {
				return nil, err
			}
			subs = append(subs, sub)
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if len(subs) == 0 {
			return nil, fmt.Errorf("%w: empty composite", ErrFilter)
		}
		if op == '&' {
			return andFilter(subs), nil
		}
		return orFilter(subs), nil
	case '!':
		p.pos++
		sub, err := p.parse()
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return notFilter{sub}, nil
	default:
		end := strings.IndexByte(p.in[p.pos:], ')')
		if end < 0 {
			return nil, fmt.Errorf("%w: unterminated relation", ErrFilter)
		}
		body := p.in[p.pos : p.pos+end]
		p.pos += end + 1
		for _, op := range []string{">=", "<=", "="} {
			if i := strings.Index(body, op); i > 0 {
				attr := strings.ToLower(strings.TrimSpace(body[:i]))
				val := strings.TrimSpace(body[i+len(op):])
				if op == "=" {
					return eqFilter{attr, val}, nil
				}
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("%w: %s wants integer, got %q", ErrFilter, op, val)
				}
				return cmpFilter{attr, op, n}, nil
			}
		}
		return nil, fmt.Errorf("%w: relation %q missing operator", ErrFilter, body)
	}
}

func (p *filterParser) expect(c byte) error {
	if p.pos >= len(p.in) || p.in[p.pos] != c {
		return fmt.Errorf("%w: expected %q at %d", ErrFilter, string(c), p.pos)
	}
	p.pos++
	return nil
}
