package mds

import (
	"testing"
	"time"
)

// TestPublisherRefreshWithoutRewrite: Refresh renews TTLs without touching
// entry contents — the delta-publishing contract the fleet control plane
// depends on (per-host rows written once, kept alive by refresh ticks).
func TestPublisherRefreshWithoutRewrite(t *testing.T) {
	dir := NewDirectory()
	p := NewPublisher(dir, "ou=fleet, o=grid", 3*time.Second)

	p.Publish(1*time.Second, []StatusRow{
		{Name: "h0", Attrs: map[string][]string{"class": {"idle"}}},
		{Name: "h1", Attrs: map[string][]string{"class": {"busy"}}},
	})

	// Refresh both past the original TTL horizon; neither may be pruned,
	// and h0's stamped attributes must be untouched (no rewrite).
	if pruned := p.Refresh(3*time.Second, []string{"h0", "h1"}); pruned != 0 {
		t.Fatalf("refresh pruned %d live entries", pruned)
	}
	if pruned := p.Refresh(5*time.Second, []string{"h0", "h1"}); pruned != 0 {
		t.Fatalf("refresh at 5s pruned %d entries", pruned)
	}
	e, err := dir.Get("hn=h0, ou=fleet, o=grid")
	if err != nil {
		t.Fatalf("Get after refresh: %v", err)
	}
	if got := e.Attrs["lastupdate"][0]; got != "1000000000" {
		t.Fatalf("refresh rewrote lastupdate to %s; want original 1s stamp", got)
	}

	// Stop refreshing h1: it ages out on the next refresh past TTL, while
	// the still-refreshed h0 survives.
	if pruned := p.Refresh(9*time.Second, []string{"h0"}); pruned != 1 {
		t.Fatalf("expected 1 pruned (h1), got %d", pruned)
	}
	if _, err := dir.Get("hn=h1, ou=fleet, o=grid"); err == nil {
		t.Fatal("stale h1 still present after prune")
	}
	if _, err := dir.Get("hn=h0, ou=fleet, o=grid"); err != nil {
		t.Fatalf("refreshed h0 was pruned: %v", err)
	}

	// Refreshing a never-published name is ignored, not an implicit Add.
	p.Refresh(9*time.Second, []string{"ghost"})
	if dir.Len() != 1 {
		t.Fatalf("directory has %d entries after ghost refresh, want 1", dir.Len())
	}
}
