package mds

import (
	"sort"
	"strconv"
	"time"
)

// StatusRow is one monitored object's current state, destined for the
// directory as a GIS-style entry. Name becomes the DN's leading component
// ("hn=<name>, <base>"); Attrs are copied verbatim, with a lastUpdate stamp
// added by the publisher.
type StatusRow struct {
	Name  string
	Attrs map[string][]string
}

// Publisher periodically mirrors live status rows into a Directory, the way
// the paper's GRAM reporters refreshed GIS. It writes the directory
// directly — no wire protocol — so a monitoring tick adds zero virtual-time
// traffic and cannot perturb the simulated workload.
//
// Rows not refreshed within TTL are pruned on the next Publish, so hosts
// that crash (and stop being reported) age out of the directory exactly as
// stale GIS registrations did.
type Publisher struct {
	// Dir receives the entries.
	Dir *Directory
	// Base is the DN suffix, e.g. "ou=monitor, o=grid".
	Base string
	// TTL ages out entries this publisher wrote but stopped refreshing;
	// 0 disables pruning.
	TTL time.Duration

	last map[string]time.Duration // normalized DN -> last refresh
	// norm memoizes name -> normalized DN so the per-tick Refresh path —
	// every unchanged host, every tick, at fleet scale — does not rebuild
	// and re-normalize the DN string each time.
	norm map[string]string
}

// NewPublisher creates a publisher writing under base into dir.
func NewPublisher(dir *Directory, base string, ttl time.Duration) *Publisher {
	return &Publisher{
		Dir: dir, Base: base, TTL: ttl,
		last: make(map[string]time.Duration),
		norm: make(map[string]string),
	}
}

// normName returns the normalized DN for a row name, memoized.
func (p *Publisher) normName(name string) (string, error) {
	if n, ok := p.norm[name]; ok {
		return n, nil
	}
	n, err := normalizeDN("hn=" + name + ", " + p.Base)
	if err != nil {
		return "", err
	}
	p.norm[name] = n
	return n, nil
}

// Publish upserts rows at virtual time now (stamping each with a lastUpdate
// attribute, in virtual nanoseconds), then prunes previously-published
// entries whose last refresh is older than TTL. Returns the number of
// entries pruned.
func (p *Publisher) Publish(now time.Duration, rows []StatusRow) int {
	stamp := strconv.FormatInt(int64(now), 10)
	for _, r := range rows {
		attrs := make(map[string][]string, len(r.Attrs)+1)
		for k, vs := range r.Attrs {
			attrs[k] = vs
		}
		attrs["lastupdate"] = []string{stamp}
		dn := "hn=" + r.Name + ", " + p.Base
		if err := p.Dir.Add(dn, attrs); err != nil {
			continue // malformed name; skip rather than poison the tick
		}
		norm, _ := p.normName(r.Name)
		p.last[norm] = now
	}
	if p.TTL <= 0 {
		return 0
	}
	return p.prune(now)
}

// Refresh renews the TTL of previously-published rows without rewriting
// them, then prunes as Publish does. Delta publishers — the fleet control
// plane publishes one aggregate row per site plus per-host rows only when a
// host's state class changes — use it so unchanged entries do not age out
// between deltas. Names that were never published are ignored. Returns the
// number of entries pruned.
func (p *Publisher) Refresh(now time.Duration, names []string) int {
	for _, name := range names {
		norm, err := p.normName(name)
		if err != nil {
			continue
		}
		if _, ok := p.last[norm]; ok {
			p.last[norm] = now
		}
	}
	if p.TTL <= 0 {
		return 0
	}
	return p.prune(now)
}

// prune deletes entries whose last refresh is older than TTL, in sorted DN
// order for deterministic traces.
func (p *Publisher) prune(now time.Duration) int {
	// Deterministic prune order: sorted DNs, so traces and tests are stable.
	var stale []string
	for dn, at := range p.last {
		if now-at > p.TTL {
			stale = append(stale, dn)
		}
	}
	sort.Strings(stale)
	for _, dn := range stale {
		_ = p.Dir.Delete(dn)
		delete(p.last, dn)
	}
	return len(stale)
}
