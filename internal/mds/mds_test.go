package mds

import (
	"errors"
	"testing"
	"testing/quick"

	"nxcluster/internal/transport"
)

func hostEntry(cluster string, cpus int) map[string][]string {
	return map[string][]string{
		"objectclass": {"resource"},
		"cluster":     {cluster},
		"freecpus":    {itoa(cpus)},
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func TestAddGetDelete(t *testing.T) {
	d := NewDirectory()
	if err := d.Add("hn=rwcp-sun, ou=rwcp, o=grid", hostEntry("rwcp", 4)); err != nil {
		t.Fatal(err)
	}
	e, err := d.Get("HN=rwcp-sun,OU=rwcp,O=grid") // key case + spacing insensitive
	if err != nil {
		t.Fatal(err)
	}
	if e.First("cluster") != "rwcp" || e.Int("freecpus", 0) != 4 {
		t.Fatalf("entry = %+v", e)
	}
	if err := d.Delete("hn=rwcp-sun, ou=rwcp, o=grid"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get("hn=rwcp-sun, ou=rwcp, o=grid"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v", err)
	}
}

func TestModify(t *testing.T) {
	d := NewDirectory()
	_ = d.Add("hn=a, o=grid", hostEntry("rwcp", 4))
	if err := d.Modify("hn=a, o=grid", map[string][]string{"freecpus": {"2"}}); err != nil {
		t.Fatal(err)
	}
	e, _ := d.Get("hn=a, o=grid")
	if e.Int("freecpus", 0) != 2 || e.First("cluster") != "rwcp" {
		t.Fatalf("modify lost data: %+v", e)
	}
	if err := d.Modify("hn=missing, o=grid", nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Modify missing = %v", err)
	}
}

func TestBadDNRejected(t *testing.T) {
	d := NewDirectory()
	for _, bad := range []string{"", "nokey", "=v", "a=1,,b=2"} {
		if err := d.Add(bad, nil); err == nil {
			t.Errorf("Add(%q) succeeded", bad)
		}
	}
}

func TestSearchSubtreeAndFilters(t *testing.T) {
	d := NewDirectory()
	_ = d.Add("hn=rwcp-sun, ou=rwcp, o=grid", hostEntry("rwcp", 4))
	_ = d.Add("hn=compas00, ou=rwcp, o=grid", hostEntry("compas", 1))
	_ = d.Add("hn=etl-o2k, ou=etl, o=grid", hostEntry("etl", 16))
	_ = d.Add("ou=rwcp, o=grid", map[string][]string{"objectclass": {"site"}})

	all, err := d.Search("o=grid", nil)
	if err != nil || len(all) != 4 {
		t.Fatalf("search all = %d, %v", len(all), err)
	}
	rwcp, err := d.Search("ou=rwcp, o=grid", nil)
	if err != nil || len(rwcp) != 3 {
		t.Fatalf("search rwcp subtree = %d, %v", len(rwcp), err)
	}
	big, err := d.Search("o=grid", And(Eq("objectclass", "resource"), Ge("freecpus", 4)))
	if err != nil || len(big) != 2 {
		t.Fatalf("search cpus>=4 = %d, %v", len(big), err)
	}
	notEtl, err := d.Search("o=grid", And(Eq("objectclass", "resource"), Not(Eq("cluster", "etl"))))
	if err != nil || len(notEtl) != 2 {
		t.Fatalf("search not etl = %d, %v", len(notEtl), err)
	}
	either, err := d.Search("o=grid", Or(Eq("cluster", "etl"), Eq("cluster", "compas")))
	if err != nil || len(either) != 2 {
		t.Fatalf("search or = %d, %v", len(either), err)
	}
	// Presence
	pres, err := d.Search("o=grid", Eq("cluster", "*"))
	if err != nil || len(pres) != 3 {
		t.Fatalf("presence = %d, %v", len(pres), err)
	}
	// Deterministic order.
	if all[0].DN > all[1].DN {
		t.Fatal("results not sorted")
	}
}

func TestParseFilter(t *testing.T) {
	f, err := ParseFilter("(&(objectclass=resource)(freecpus>=4)(!(cluster=etl)))")
	if err != nil {
		t.Fatal(err)
	}
	e := &Entry{Attrs: map[string][]string{
		"objectclass": {"resource"}, "freecpus": {"8"}, "cluster": {"rwcp"},
	}}
	if !f.Matches(e) {
		t.Fatal("filter should match")
	}
	e.Attrs["cluster"] = []string{"etl"}
	if f.Matches(e) {
		t.Fatal("negation failed")
	}
	for _, bad := range []string{"", "(", "(a=b", "(&)", "(a>=x)", "(a)", "(a=b)x"} {
		if _, err := ParseFilter(bad); err == nil {
			t.Errorf("ParseFilter(%q) succeeded", bad)
		}
	}
}

func TestQuickFilterRoundTrip(t *testing.T) {
	// Property: a built filter's String() re-parses to a filter with the
	// same verdict on arbitrary single-attribute entries.
	prop := func(val uint8, threshold uint8) bool {
		f := And(Eq("objectclass", "resource"), Ge("freecpus", int(threshold)))
		parsed, err := ParseFilter(f.String())
		if err != nil {
			return false
		}
		e := &Entry{Attrs: map[string][]string{
			"objectclass": {"resource"},
			"freecpus":    {itoa(int(val))},
		}}
		return f.Matches(e) == parsed.Matches(e)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestServerClientOverTCP(t *testing.T) {
	env := transport.NewTCPEnv("localhost")
	srv := NewServer(NewDirectory())
	ready := make(chan string, 1)
	env.Spawn("mds", func(e transport.Env) {
		_ = srv.Serve(e, 0, func(addr string) { ready <- addr })
	})
	addr := <-ready
	defer srv.Close(env)

	cl := Client{Addr: addr}
	if err := cl.Add(env, "hn=rwcp-sun, ou=rwcp, o=grid", hostEntry("rwcp", 4)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Add(env, "hn=etl-o2k, ou=etl, o=grid", hostEntry("etl", 16)); err != nil {
		t.Fatal(err)
	}
	e, err := cl.Get(env, "hn=rwcp-sun, ou=rwcp, o=grid")
	if err != nil || e.First("cluster") != "rwcp" {
		t.Fatalf("Get = %+v, %v", e, err)
	}
	res, err := cl.Search(env, "o=grid", "(freecpus>=8)")
	if err != nil || len(res) != 1 || res[0].First("cluster") != "etl" {
		t.Fatalf("Search = %v, %v", res, err)
	}
	if err := cl.Modify(env, "hn=etl-o2k, ou=etl, o=grid", map[string][]string{"freecpus": {"0"}}); err != nil {
		t.Fatal(err)
	}
	res, err = cl.Search(env, "o=grid", "(freecpus>=8)")
	if err != nil || len(res) != 0 {
		t.Fatalf("Search after modify = %v, %v", res, err)
	}
	if err := cl.Delete(env, "hn=etl-o2k, ou=etl, o=grid"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(env, "hn=etl-o2k, ou=etl, o=grid"); err == nil {
		t.Fatal("Get after delete succeeded")
	}
	// Bad filter surfaces as server error.
	if _, err := cl.Search(env, "o=grid", "(((("); err == nil {
		t.Fatal("bad filter accepted")
	}
}
