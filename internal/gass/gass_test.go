package gass

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"nxcluster/internal/transport"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	s.Put("input.dat", []byte("fifty items"))
	got, err := s.Get("/input.dat") // leading slash normalization
	if err != nil || string(got) != "fifty items" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := s.Get("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing = %v", err)
	}
	s.Put("/jobs/1/out", []byte("x"))
	s.Put("/jobs/2/out", []byte("y"))
	if l := s.List("/jobs"); len(l) != 2 || l[0] != "/jobs/1/out" {
		t.Fatalf("List = %v", l)
	}
	if err := s.Delete("/jobs/1/out"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("/jobs/1/out"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v", err)
	}
	// Mutating the returned slice must not corrupt the store.
	data, _ := s.Get("/input.dat")
	data[0] = 'X'
	again, _ := s.Get("/input.dat")
	if again[0] == 'X' {
		t.Fatal("Get aliases internal storage")
	}
}

func TestParseAndBuildURL(t *testing.T) {
	hp, path, err := ParseURL("x-gass://rwcp-outer:7020/jobs/1/stdout")
	if err != nil || hp != "rwcp-outer:7020" || path != "/jobs/1/stdout" {
		t.Fatalf("ParseURL = %q, %q, %v", hp, path, err)
	}
	if URL("h:1", "a/b") != "x-gass://h:1/a/b" {
		t.Fatal("URL build")
	}
	for _, bad := range []string{"", "http://h:1/p", "x-gass://hostonly"} {
		if _, _, err := ParseURL(bad); err == nil {
			t.Errorf("ParseURL(%q) succeeded", bad)
		}
	}
}

func startServer(t *testing.T) (*transport.TCPEnv, *Server, string) {
	t.Helper()
	env := transport.NewTCPEnv("localhost")
	srv := NewServer(NewStore())
	ready := make(chan string, 1)
	env.Spawn("gass", func(e transport.Env) {
		_ = srv.Serve(e, 0, func(addr string) { ready <- addr })
	})
	addr := <-ready
	t.Cleanup(func() { srv.Close(env) })
	return env, srv, addr
}

func TestPublishFetchOverTCP(t *testing.T) {
	env, _, addr := startServer(t)
	payload := bytes.Repeat([]byte("knapsack"), 1000)
	url := URL(addr, "/stage/input.dat")
	if err := Publish(env, url, payload); err != nil {
		t.Fatal(err)
	}
	got, err := Fetch(env, url)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Fetch = %d bytes, %v", len(got), err)
	}
	if _, err := Fetch(env, URL(addr, "/no/such")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing fetch = %v", err)
	}
}

func TestClientCache(t *testing.T) {
	env, srv, addr := startServer(t)
	url := URL(addr, "/data")
	srv.Store.Put("/data", []byte("v1"))
	cl := NewClient()
	if got, err := cl.Get(env, url); err != nil || string(got) != "v1" {
		t.Fatalf("first Get = %q, %v", got, err)
	}
	// Server-side change is hidden by the cache until invalidation, like
	// the GASS file cache.
	srv.Store.Put("/data", []byte("v2"))
	if got, _ := cl.Get(env, url); string(got) != "v1" {
		t.Fatalf("cached Get = %q, want v1", got)
	}
	if cl.CacheSize() != 1 {
		t.Fatalf("CacheSize = %d", cl.CacheSize())
	}
	cl.Invalidate(url)
	if got, _ := cl.Get(env, url); string(got) != "v2" {
		t.Fatalf("post-invalidate Get = %q, want v2", got)
	}
}

func TestClientCacheLRUEviction(t *testing.T) {
	env, srv, addr := startServer(t)
	srv.Store.Put("/a", bytes.Repeat([]byte("a"), 100))
	srv.Store.Put("/b", bytes.Repeat([]byte("b"), 100))
	srv.Store.Put("/c", bytes.Repeat([]byte("c"), 100))
	cl := NewClientCap(250)
	for _, p := range []string{"/a", "/b"} {
		if _, err := cl.Get(env, URL(addr, p)); err != nil {
			t.Fatal(err)
		}
	}
	if cl.CacheBytes() != 200 || cl.CacheSize() != 2 {
		t.Fatalf("after a,b: %d bytes, %d entries", cl.CacheBytes(), cl.CacheSize())
	}
	// Touch /a so /b becomes least recently used, then fetch /c: only /b
	// should be evicted.
	if _, err := cl.Get(env, URL(addr, "/a")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(env, URL(addr, "/c")); err != nil {
		t.Fatal(err)
	}
	if cl.CacheBytes() != 200 || cl.CacheSize() != 2 {
		t.Fatalf("after evict: %d bytes, %d entries", cl.CacheBytes(), cl.CacheSize())
	}
	srv.Store.Put("/a", []byte("changed"))
	srv.Store.Put("/b", []byte("changed"))
	if got, _ := cl.Get(env, URL(addr, "/a")); len(got) != 100 {
		t.Fatalf("/a was evicted (got %d bytes)", len(got))
	}
	if got, _ := cl.Get(env, URL(addr, "/b")); len(got) != 7 {
		t.Fatalf("/b was not evicted (got %d bytes)", len(got))
	}
}

func TestClientCacheOversizeNotCached(t *testing.T) {
	env, srv, addr := startServer(t)
	srv.Store.Put("/big", bytes.Repeat([]byte("x"), 300))
	cl := NewClientCap(250)
	if got, err := cl.Get(env, URL(addr, "/big")); err != nil || len(got) != 300 {
		t.Fatalf("Get = %d bytes, %v", len(got), err)
	}
	if cl.CacheSize() != 0 || cl.CacheBytes() != 0 {
		t.Fatalf("oversize entry cached: %d entries, %d bytes",
			cl.CacheSize(), cl.CacheBytes())
	}
}

func TestStoreMaxFileSize(t *testing.T) {
	s := NewStore()
	if err := s.Put("/huge", make([]byte, MaxFileSize+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize Put = %v, want ErrTooLarge", err)
	}
	if _, err := s.Get("/huge"); !errors.Is(err, ErrNotFound) {
		t.Fatal("oversize Put stored data")
	}
	if err := s.Put("/ok", make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
}

func TestPublishTooLargeOverTCP(t *testing.T) {
	env, _, addr := startServer(t)
	err := Publish(env, URL(addr, "/huge"), make([]byte, MaxFileSize+1))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Publish = %v, want ErrTooLarge", err)
	}
}

func TestEmptyFile(t *testing.T) {
	env, _, addr := startServer(t)
	url := URL(addr, "/empty")
	if err := Publish(env, url, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Fetch(env, url)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty fetch = %v, %v", got, err)
	}
}

func TestQuickPublishFetchRoundTrip(t *testing.T) {
	env, _, addr := startServer(t)
	prop := func(name uint16, data []byte) bool {
		url := URL(addr, "/q/"+itoa(int(name)))
		if err := Publish(env, url, data); err != nil {
			return false
		}
		got, err := Fetch(env, url)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	digits := "0123456789"
	if n == 0 {
		return "0"
	}
	var out []byte
	for n > 0 {
		out = append([]byte{digits[n%10]}, out...)
		n /= 10
	}
	return string(out)
}
