// Package gass implements Global Access to Secondary Storage: the file
// service Globus jobs use for input/output. The paper's RMF relies on it —
// "since the Globus GASS facility uses files for input/output, the Q system
// also transfers the files to remote resources".
//
// A Server exposes a Store (an in-memory file system; the simulated
// equivalent of a spool directory) at x-gass://host:port/path URLs. The
// Client fetches and publishes files, with an optional local cache keyed by
// URL, mirroring the GASS file cache.
package gass

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"nxcluster/internal/obs"
	"nxcluster/internal/transport"
)

// Scheme prefixes GASS URLs.
const Scheme = "x-gass://"

// ErrNotFound is returned for absent paths.
var ErrNotFound = errors.New("gass: file not found")

// ErrTooLarge is returned when a file exceeds MaxFileSize — on the server
// store path as well as at transfer time, so an oversize file can never
// enter a store through any route.
var ErrTooLarge = errors.New("gass: file too large")

// MaxFileSize bounds a single file and a single transfer.
const MaxFileSize = 64 << 20

// Store is an in-memory file system.
type Store struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewStore creates an empty store.
func NewStore() *Store { return &Store{files: make(map[string][]byte)} }

func cleanPath(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return p
}

// Put writes a file. Files beyond MaxFileSize are rejected with
// ErrTooLarge.
func (s *Store) Put(path string, data []byte) error {
	if len(data) > MaxFileSize {
		return fmt.Errorf("%w: %s (%d bytes)", ErrTooLarge, cleanPath(path), len(data))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[cleanPath(path)] = append([]byte(nil), data...)
	return nil
}

// Get reads a file.
func (s *Store) Get(path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.files[cleanPath(path)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return append([]byte(nil), data...), nil
}

// Delete removes a file.
func (s *Store) Delete(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := cleanPath(path)
	if _, ok := s.files[p]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	delete(s.files, p)
	return nil
}

// List returns the stored paths under a prefix, sorted.
func (s *Store) List(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	prefix = cleanPath(prefix)
	var out []string
	for p := range s.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// ParseURL splits an x-gass URL into transport address and path.
func ParseURL(url string) (hostport, path string, err error) {
	if !strings.HasPrefix(url, Scheme) {
		return "", "", fmt.Errorf("gass: URL %q: missing %s scheme", url, Scheme)
	}
	rest := url[len(Scheme):]
	i := strings.IndexByte(rest, '/')
	if i < 0 {
		return "", "", fmt.Errorf("gass: URL %q: missing path", url)
	}
	return rest[:i], rest[i:], nil
}

// URL builds an x-gass URL.
func URL(hostport, path string) string {
	return Scheme + hostport + cleanPath(path)
}

// Wire ops.
const (
	opGet = byte(1)
	opPut = byte(2)
)

// Server serves a Store over the transport.
type Server struct {
	Store    *Store
	listener transport.Listener
}

// NewServer wraps a store.
func NewServer(store *Store) *Server { return &Server{Store: store} }

// Addr returns the bound address once serving.
func (s *Server) Addr() string { return s.listener.Addr() }

// Serve binds and accepts; it blocks its process.
func (s *Server) Serve(env transport.Env, port int, ready func(addr string)) error {
	l, err := env.Listen(port)
	if err != nil {
		return fmt.Errorf("gass: listen: %w", err)
	}
	s.listener = l
	if ready != nil {
		ready(l.Addr())
	}
	for {
		c, err := l.Accept(env)
		if err != nil {
			return nil
		}
		conn := c
		env.SpawnService("gass:conn", func(e transport.Env) { s.handle(e, conn) })
	}
}

// Close shuts the listener down.
func (s *Server) Close(env transport.Env) {
	if s.listener != nil {
		_ = s.listener.Close(env)
	}
}

// handle serves one request: [op:1][pathLen:2][path]([dataLen:4][data])
// with response [status:1]([dataLen:4][data] | [msgLen:2][msg]).
func (s *Server) handle(env transport.Env, c transport.Conn) {
	defer c.Close(env)
	st := transport.Stream{Env: env, Conn: c}
	var hdr [3]byte
	if _, err := io.ReadFull(st, hdr[:]); err != nil {
		return
	}
	op := hdr[0]
	pathLen := int(binary.BigEndian.Uint16(hdr[1:3]))
	pathBuf := make([]byte, pathLen)
	if _, err := io.ReadFull(st, pathBuf); err != nil {
		return
	}
	path := string(pathBuf)
	switch op {
	case opGet:
		data, err := s.Store.Get(path)
		if err != nil {
			writeErr(st, err)
			return
		}
		var sz [5]byte
		sz[0] = 0 // OK
		binary.BigEndian.PutUint32(sz[1:], uint32(len(data)))
		if _, err := st.Write(sz[:]); err != nil {
			return
		}
		_, _ = st.Write(data)
	case opPut:
		var sz [4]byte
		if _, err := io.ReadFull(st, sz[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(sz[:])
		if n > MaxFileSize {
			writeErr(st, fmt.Errorf("%w (%d bytes)", ErrTooLarge, n))
			return
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(st, data); err != nil {
			return
		}
		if err := s.Store.Put(path, data); err != nil {
			writeErr(st, err)
			return
		}
		_, _ = st.Write([]byte{0})
	default:
		writeErr(st, fmt.Errorf("gass: unknown op %d", op))
	}
}

func writeErr(st transport.Stream, err error) {
	msg := err.Error()
	if len(msg) > 65535 {
		msg = msg[:65535]
	}
	buf := make([]byte, 3+len(msg))
	buf[0] = 1
	binary.BigEndian.PutUint16(buf[1:3], uint16(len(msg)))
	copy(buf[3:], msg)
	_, _ = st.Write(buf)
}

// DefaultCacheBytes is the client cache's default byte cap.
const DefaultCacheBytes = 16 << 20

// cacheEntry is one cached file on the client's LRU list (most recently
// used at the front).
type cacheEntry struct {
	url        string
	data       []byte
	prev, next *cacheEntry
}

// Client fetches and publishes GASS files through a byte-capped LRU cache,
// mirroring the GASS file cache. Repeated staging of the same inputs hits
// the cache; the cap keeps a long-lived client (e.g. a Q server staging
// many jobs) from growing without bound.
type Client struct {
	mu       sync.Mutex
	capBytes int
	size     int
	entries  map[string]*cacheEntry
	head     *cacheEntry // most recently used
	tail     *cacheEntry // least recently used, evicted first
}

// NewClient creates a client with the default cache cap.
func NewClient() *Client { return NewClientCap(DefaultCacheBytes) }

// NewClientCap creates a client whose cache holds at most capBytes of file
// data; capBytes <= 0 disables caching entirely.
func NewClientCap(capBytes int) *Client {
	return &Client{capBytes: capBytes, entries: make(map[string]*cacheEntry)}
}

// unlink removes e from the LRU list.
func (c *Client) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (c *Client) pushFront(e *cacheEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// Get fetches url, serving repeated fetches from the cache.
func (c *Client) Get(env transport.Env, url string) ([]byte, error) {
	c.mu.Lock()
	if e, ok := c.entries[url]; ok {
		c.unlink(e)
		c.pushFront(e)
		data := append([]byte(nil), e.data...)
		c.mu.Unlock()
		return data, nil
	}
	c.mu.Unlock()
	data, err := Fetch(env, url)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.insert(url, data)
	c.mu.Unlock()
	return append([]byte(nil), data...), nil
}

// insert caches data under url (mu held): files over the cap are not
// cached at all; otherwise least-recently-used entries are evicted until
// the new entry fits.
func (c *Client) insert(url string, data []byte) {
	if len(data) > c.capBytes {
		return
	}
	if e, ok := c.entries[url]; ok {
		c.size -= len(e.data)
		c.unlink(e)
		delete(c.entries, url)
	}
	for c.size+len(data) > c.capBytes && c.tail != nil {
		lru := c.tail
		c.size -= len(lru.data)
		c.unlink(lru)
		delete(c.entries, lru.url)
	}
	e := &cacheEntry{url: url, data: data}
	c.entries[url] = e
	c.pushFront(e)
	c.size += len(data)
}

// Invalidate drops a cached URL.
func (c *Client) Invalidate(url string) {
	c.mu.Lock()
	if e, ok := c.entries[url]; ok {
		c.size -= len(e.data)
		c.unlink(e)
		delete(c.entries, url)
	}
	c.mu.Unlock()
}

// CacheSize reports cached entry count.
func (c *Client) CacheSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// CacheBytes reports the cached data volume.
func (c *Client) CacheBytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Fetch retrieves a URL without caching.
func Fetch(env transport.Env, url string) ([]byte, error) {
	hostport, path, err := ParseURL(url)
	if err != nil {
		return nil, err
	}
	o := obs.From(env)
	span := o.BeginChild(env.Now(), obs.CtxOf(env), "gass", "fetch", env.Hostname(), obs.Str("url", url))
	conn, err := env.Dial(hostport)
	if err != nil {
		o.EndSpan(env.Now(), span, "gass", "fetch", env.Hostname(), obs.Str("err", "dial"))
		return nil, fmt.Errorf("gass: dial %s: %w", hostport, err)
	}
	defer conn.Close(env)
	st := transport.Stream{Env: env, Conn: conn}
	if err := writeReq(st, opGet, path); err != nil {
		o.EndSpan(env.Now(), span, "gass", "fetch", env.Hostname(), obs.Str("err", "request"))
		return nil, err
	}
	data, err := readResp(st)
	if err != nil {
		o.EndSpan(env.Now(), span, "gass", "fetch", env.Hostname(), obs.Str("err", err.Error()))
		return nil, err
	}
	o.EndSpan(env.Now(), span, "gass", "fetch", env.Hostname(), obs.Int("bytes", int64(len(data))))
	return data, nil
}

// Publish stores data at a URL.
func Publish(env transport.Env, url string, data []byte) error {
	hostport, path, err := ParseURL(url)
	if err != nil {
		return err
	}
	// Reject oversize payloads before dialing: the server would refuse the
	// size header anyway, and shipping the body first just wastes the link.
	if len(data) > MaxFileSize {
		return fmt.Errorf("%w: put %s (%d bytes)", ErrTooLarge, url, len(data))
	}
	o := obs.From(env)
	span := o.BeginChild(env.Now(), obs.CtxOf(env), "gass", "publish", env.Hostname(),
		obs.Str("url", url), obs.Int("bytes", int64(len(data))))
	err = publish(env, hostport, path, url, data)
	if err != nil {
		o.EndSpan(env.Now(), span, "gass", "publish", env.Hostname(), obs.Str("err", err.Error()))
		return err
	}
	o.EndSpan(env.Now(), span, "gass", "publish", env.Hostname())
	return nil
}

// publish is Publish's transfer body, split out so the caller can wrap one
// success and one failure span-end around every exit.
func publish(env transport.Env, hostport, path, url string, data []byte) error {
	conn, err := env.Dial(hostport)
	if err != nil {
		return fmt.Errorf("gass: dial %s: %w", hostport, err)
	}
	defer conn.Close(env)
	st := transport.Stream{Env: env, Conn: conn}
	if err := writeReq(st, opPut, path); err != nil {
		return err
	}
	var sz [4]byte
	binary.BigEndian.PutUint32(sz[:], uint32(len(data)))
	if _, err := st.Write(sz[:]); err != nil {
		return err
	}
	if _, err := st.Write(data); err != nil {
		return err
	}
	status := make([]byte, 1)
	if _, err := io.ReadFull(st, status); err != nil {
		return err
	}
	if status[0] != 0 {
		msg, _ := readErrMsg(st)
		if strings.Contains(msg, "too large") {
			return fmt.Errorf("%w: put %s: %s", ErrTooLarge, url, msg)
		}
		return fmt.Errorf("gass: put %s: %s", url, msg)
	}
	return nil
}

func writeReq(st transport.Stream, op byte, path string) error {
	buf := make([]byte, 3+len(path))
	buf[0] = op
	binary.BigEndian.PutUint16(buf[1:3], uint16(len(path)))
	copy(buf[3:], path)
	_, err := st.Write(buf)
	return err
}

func readResp(st transport.Stream) ([]byte, error) {
	status := make([]byte, 1)
	if _, err := io.ReadFull(st, status); err != nil {
		return nil, err
	}
	if status[0] != 0 {
		msg, _ := readErrMsg(st)
		if strings.Contains(msg, "not found") {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, msg)
		}
		if strings.Contains(msg, "too large") {
			return nil, fmt.Errorf("%w: %s", ErrTooLarge, msg)
		}
		return nil, errors.New("gass: " + msg)
	}
	var sz [4]byte
	if _, err := io.ReadFull(st, sz[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(sz[:])
	if n > MaxFileSize {
		return nil, fmt.Errorf("gass: oversized response (%d)", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(st, data); err != nil {
		return nil, err
	}
	return data, nil
}

func readErrMsg(st transport.Stream) (string, error) {
	var l [2]byte
	if _, err := io.ReadFull(st, l[:]); err != nil {
		return "", err
	}
	msg := make([]byte, binary.BigEndian.Uint16(l[:]))
	if _, err := io.ReadFull(st, msg); err != nil {
		return "", err
	}
	return string(msg), nil
}
