// Package repro is the root of a from-scratch Go reproduction of
// "Performance Evaluation of a Firewall-compliant Globus-based Wide-area
// Cluster System" (Tanaka, Sato, Nakada, Sekiguchi, Hirano — HPDC 2000).
//
// The library lives under internal/ (see DESIGN.md for the inventory), the
// runnable tools under cmd/, and the demonstrations under examples/. The
// top-level test files regenerate the paper's evaluation:
//
//	go test -bench=.      # tables 2, 4, 5, 6 and the figure flows
//	go run ./cmd/experiments
//
// See README.md for the quickstart and EXPERIMENTS.md for paper-vs-measured
// results.
package repro
