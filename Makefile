# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test check chaos race bench bench-json experiments examples cover clean

all: build check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the default verification gate: vet, the end-to-end chaos
# scenarios, and the full test suite under the race detector (the parallel
# sweep makes race coverage load-bearing).
check: chaos
	$(GO) vet ./...
	$(GO) test -race ./...

# chaos runs the fault-injection recovery scenarios (see EXPERIMENTS.md,
# "Chaos runs") on their own, under the race detector.
chaos:
	$(GO) test -race -v -run 'TestChaos' ./internal/chaos/

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json runs the kernel/data-plane microbenchmarks and emits machine-
# readable results for tracking regressions across commits.
bench-json:
	$(GO) test -run NONE -bench 'KernelStep|KernelTimerStop|SimnetThroughput|MPIPingPong' -benchmem . | $(GO) run ./cmd/benchjson > BENCH_kernel.json
	@cat BENCH_kernel.json

experiments:
	$(GO) run ./cmd/experiments

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/wideareampi
	$(GO) run ./examples/jobsubmit
	$(GO) run ./examples/knapsackrun
	$(GO) run ./examples/nqueens

cover:
	$(GO) test -cover ./internal/...

clean:
	$(GO) clean ./...
