# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test check chaos chaos-suite scenarios fleet-smoke trace-goldens race race-parallel bench bench-json bench-diff experiments examples cover fuzz clean

all: build check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the default verification gate: vet, the end-to-end chaos
# scenarios, the declarative gray-failure suite gated against its committed
# baseline, the declarative scenario library (validate + run + coverage
# gate), the fleet-scale smoke run, the full test suite under the race
# detector (the parallel sweep makes race coverage load-bearing), a focused
# race pass over the parallel-DES kernel paths, a short fuzz smoke over the
# wire-facing parsers, and the coverage floor.
check: chaos chaos-suite scenarios fleet-smoke trace-goldens
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) race-parallel
	$(MAKE) fuzz
	$(MAKE) cover

# race-parallel exercises the conservative parallel-DES machinery — group
# kernels, the partitioned network coupling, and the wide-grid oracle
# tests — under the race detector with fresh (uncached) runs.
race-parallel:
	$(GO) test -race -count=1 -run 'TestGroup|TestPartitioned|TestCouple|TestGridKnapsack|TestParallel' ./internal/sim/ ./internal/simnet/ ./internal/bench/

# chaos runs the fault-injection recovery scenarios (see EXPERIMENTS.md,
# "Chaos runs") on their own, under the race detector.
chaos:
	$(GO) test -race -v -run 'TestChaos' ./internal/chaos/

# chaos-suite runs the declarative gray-failure scenario library (partitions,
# flapping links, stragglers, rolling outages — see EXPERIMENTS.md, "Chaos
# suite"), every scenario replayed twice for trace determinism, then gates
# the fresh summary against the committed CHAOS_suite.json baseline: any
# failed invariant, shrunk scenario/invariant count, or dropped scenario
# name exits non-zero.
chaos-suite:
	$(GO) run ./cmd/experiments -run chaos-suite -chaos-json CHAOS_new.json
	$(GO) run ./cmd/benchdiff -chaos-old CHAOS_suite.json -chaos-new CHAOS_new.json

# scenarios validates and runs the declarative scenario library (see
# EXPERIMENTS.md, "Scenario runs"): every file under scenarios/ must parse,
# validate, double-run bit-identically, and pass its declared assertions;
# the fresh summary is then gated against the committed SCENARIOS_suite.json
# baseline exactly like the chaos suite (failed invariant, shrunk counts, or
# a dropped scenario name exits non-zero).
scenarios:
	$(GO) run ./cmd/simulator validate scenarios/*.yaml
	$(GO) run ./cmd/simulator run -json SCENARIOS_new.json scenarios/*.yaml
	$(GO) run ./cmd/benchdiff -scenarios-old SCENARIOS_suite.json -scenarios-new SCENARIOS_new.json

# fleet-smoke is the seconds-scale fleet gate: the open-loop engine's
# end-to-end and determinism tests (fresh, uncached), then a 20k-job fleet
# run through the real CLI. The full 10k-host / 1M-job scale point lives in
# scenarios/fleet-10k.yaml and runs under `make scenarios`.
fleet-smoke:
	$(GO) test -count=1 -run 'TestEngine' ./internal/fleet/
	$(GO) run ./cmd/experiments -run fleet -fleet-sites 8 -fleet-hosts 16 -fleet-jobs 20000

# trace-goldens re-runs (uncached) the byte-exact observability goldens —
# the Chrome trace_event and JSONL exports, the HTML time-series report —
# plus the causal-analysis and tracer CLI tests. Regenerate intentional
# drift with `go test ./internal/obs/... -run Golden -update`.
trace-goldens:
	$(GO) test -count=1 -run 'Golden|TestChrome|TestBuild|TestDecompose|TestSummarize|TestSpanDurations|TestCausal|TestTable4Jobs|TestAnalyze|TestQuery|TestRoundTrip' ./internal/obs/... ./internal/bench/ ./cmd/tracer/

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json runs the kernel/data-plane microbenchmarks and emits machine-
# readable results for tracking regressions across commits. BENCHTIME
# stretches each benchmark enough that the ~100ms/op parallel-DES runs get
# a stable sample.
BENCHTIME ?= 2s
BENCH_PAT = KernelStep|KernelTimerStop|ObsSpan|SimnetThroughput|MPIPingPong|TransferSingle|TransferParallel8|ParallelTable4|FleetSweep

bench-json:
	$(GO) test -run NONE -bench '$(BENCH_PAT)' -benchtime $(BENCHTIME) -benchmem . | $(GO) run ./cmd/benchjson > BENCH_kernel.json
	@cat BENCH_kernel.json

# bench-diff re-runs the microbenchmarks and gates on regressions against
# the committed BENCH_kernel.json baseline: > BENCH_THRESHOLD relative ns/op
# or allocs/op growth (any growth at all on 0-alloc baselines) exits
# non-zero, and parallel speedups are summarized (see cmd/benchdiff).
BENCH_THRESHOLD ?= 0.10

bench-diff:
	$(GO) test -run NONE -bench '$(BENCH_PAT)' -benchtime $(BENCHTIME) -benchmem . | $(GO) run ./cmd/benchjson > BENCH_new.json
	$(GO) run ./cmd/benchdiff -threshold $(BENCH_THRESHOLD) BENCH_kernel.json BENCH_new.json

experiments:
	$(GO) run ./cmd/experiments

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/wideareampi
	$(GO) run ./examples/jobsubmit
	$(GO) run ./examples/knapsackrun
	$(GO) run ./examples/nqueens

# COVER_MIN is the statement-coverage floor `make cover` enforces over the
# whole module (cmd binaries included).
COVER_MIN ?= 70

cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t+0 < min+0) ? 1 : 0 }' || \
	{ echo "coverage $$total% is below the $(COVER_MIN)% floor"; exit 1; }

# fuzz gives each wire-facing parser a short, deterministic-budget fuzz run:
# the RSL parser, the proxy control-channel decoder, the gridftp MODE E
# block reader, and the scenario-file parser. Crashers land in testdata/fuzz/
# and fail the build until fixed.
FUZZTIME ?= 10s

fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/rsl/
	$(GO) test -fuzz FuzzReadMsg -fuzztime $(FUZZTIME) ./internal/proxy/
	$(GO) test -fuzz FuzzReadBlock -fuzztime $(FUZZTIME) ./internal/gridftp/
	$(GO) test -fuzz FuzzScenario -fuzztime $(FUZZTIME) ./internal/scenario/

clean:
	$(GO) clean ./...
