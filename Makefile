# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench experiments examples cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

experiments:
	$(GO) run ./cmd/experiments

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/wideareampi
	$(GO) run ./examples/jobsubmit
	$(GO) run ./examples/knapsackrun
	$(GO) run ./examples/nqueens

cover:
	$(GO) test -cover ./internal/...

clean:
	$(GO) clean ./...
