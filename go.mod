module nxcluster

go 1.22
