// N-queens on the wide-area cluster: a second tree-search application,
// running on the generic treesearch engine over the same simulated testbed
// — the paper's conclusion ("parallel tree search ... is considered
// suitable for metacomputing environments") applied beyond the knapsack.
//
// Run with: go run ./examples/nqueens [-n 11]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"nxcluster/internal/cluster"
	"nxcluster/internal/mpi"
	"nxcluster/internal/nqueens"
	"nxcluster/internal/treesearch"
)

func main() {
	n := flag.Int("n", 11, "board size")
	flag.Parse()

	root, err := nqueens.Root(*n)
	if err != nil {
		log.Fatal(err)
	}
	want := nqueens.Count(*n)
	fmt.Printf("%d-queens on the 20-processor wide-area cluster (expected %d solutions)\n\n", *n, want)

	tb := cluster.NewTestbed(cluster.Options{})
	defer tb.K.Shutdown()
	w := mpi.NewWorld(tb.Placements(cluster.SystemWide, true))
	var res *treesearch.Result
	start := time.Now()
	w.Launch(func(c *mpi.Comm) error {
		r, err := treesearch.Run(c, root, nqueens.Expander(), treesearch.Params{
			Combine:  treesearch.Sum,
			Interval: 25, StealUnit: 2,
			TaskCost: 200 * time.Microsecond,
		})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res = r
		}
		return nil
	})
	if err := tb.K.Run(); err != nil {
		log.Fatalf("simulation: %v", err)
	}
	if err := w.Err(); err != nil {
		log.Fatalf("mpi: %v", err)
	}

	fmt.Printf("solutions:          %d\n", res.Score)
	fmt.Printf("tasks expanded:     %d\n", res.Expanded)
	fmt.Printf("virtual exec time:  %.2f s\n", res.Elapsed.Seconds())
	fmt.Printf("host wall time:     %v\n", time.Since(start).Round(time.Millisecond))
	if res.Score != want {
		log.Fatalf("WRONG RESULT: want %d", want)
	}
	fmt.Println("\nper-rank expansions:")
	for i, v := range res.PerRank {
		fmt.Printf("  rank %2d: %8d\n", i, v)
	}
}
