// Knapsack on the wide-area cluster: the paper's full Table 4 workload on
// the 20-processor simulated testbed, with and without the Nexus Proxy, so
// the headline result — proxy overhead of a few percent — can be observed
// directly.
//
// Run with: go run ./examples/knapsackrun
package main

import (
	"fmt"
	"log"

	"nxcluster/internal/cluster"
	"nxcluster/internal/knapsack"
	"nxcluster/internal/mpi"
)

func main() {
	const items, capacity = 50, 4
	in := knapsack.Normalized(items, capacity)
	fmt.Printf("0-1 knapsack, %d items, capacity %d: %d tree nodes, no bound pruning\n\n",
		items, capacity, knapsack.NormalizedTreeNodes(items, capacity))

	seq := run(cluster.Options{}, func(tb *cluster.Testbed) []mpi.Placement {
		return tb.SequentialPlacement()
	}, in)
	fmt.Printf("%-42s %10.2f s   speedup %5.2f\n", "RWCP-Sun sequential baseline", seq.Elapsed.Seconds(), 1.0)

	withProxy := run(cluster.Options{}, func(tb *cluster.Testbed) []mpi.Placement {
		return tb.Placements(cluster.SystemWide, true)
	}, in)
	fmt.Printf("%-42s %10.2f s   speedup %5.2f\n", "Wide-area Cluster (use Nexus Proxy)",
		withProxy.Elapsed.Seconds(), seq.Elapsed.Seconds()/withProxy.Elapsed.Seconds())

	noProxy := run(cluster.Options{OpenFirewall: true}, func(tb *cluster.Testbed) []mpi.Placement {
		return tb.Placements(cluster.SystemWide, false)
	}, in)
	fmt.Printf("%-42s %10.2f s   speedup %5.2f\n", "Wide-area Cluster (not use Nexus Proxy)",
		noProxy.Elapsed.Seconds(), seq.Elapsed.Seconds()/noProxy.Elapsed.Seconds())

	overhead := (withProxy.Elapsed.Seconds() - noProxy.Elapsed.Seconds()) / noProxy.Elapsed.Seconds()
	fmt.Printf("\nproxy overhead: %.1f%% (paper reports ~3.5%%)\n\n", overhead*100)

	fmt.Println("wide-area run statistics (with proxy):")
	fmt.Printf("  master handled %d steal requests\n", withProxy.MasterHandled)
	for _, st := range withProxy.Stats {
		fmt.Printf("  rank %2d %-10s traversed %9d nodes, %4d steals, %4d sent back\n",
			st.Rank, st.Name, st.Traversed, st.Steals, st.SentBack)
	}
}

func run(opts cluster.Options, place func(*cluster.Testbed) []mpi.Placement, in *knapsack.Instance) *knapsack.Result {
	tb := cluster.NewTestbed(opts)
	defer tb.K.Shutdown()
	w := mpi.NewWorld(place(tb))
	var res *knapsack.Result
	w.Launch(func(c *mpi.Comm) error {
		r, err := knapsack.Run(c, in, knapsack.DefaultParams())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res = r
		}
		return nil
	})
	if err := tb.K.Run(); err != nil {
		log.Fatalf("simulation: %v", err)
	}
	if err := w.Err(); err != nil {
		log.Fatalf("mpi: %v", err)
	}
	return res
}
