// Quickstart: run the Nexus Proxy on real TCP sockets in one process.
//
// It starts an inner server (the daemon inside the firewall, on its single
// pre-opened nxport) and an outer server (outside the firewall), then
// demonstrates both relay modes from the paper:
//
//   - active open (Figure 3): a "firewalled" client reaches a public echo
//     server via NXProxyConnect;
//   - passive open (Figure 4): the firewalled process binds via NXProxyBind,
//     advertises the outer server's public address, and a remote peer
//     connects to it through the outer -> inner -> client chain.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"

	"nxcluster/internal/proxy"
	"nxcluster/internal/transport"
)

func main() {
	env := transport.NewTCPEnv("localhost")

	// Inner server on the nxport.
	inner := proxy.NewInnerServer(proxy.RelayConfig{})
	innerReady := make(chan string, 1)
	env.Spawn("inner", func(e transport.Env) {
		if err := inner.Serve(e, 0, func(a string) { innerReady <- a }); err != nil {
			log.Fatalf("inner: %v", err)
		}
	})
	innerAddr := <-innerReady
	fmt.Printf("inner server on nxport: %s\n", innerAddr)

	// Outer server, configured to splice through the inner server.
	outer := proxy.NewOuterServer(innerAddr, proxy.RelayConfig{})
	outerReady := make(chan string, 1)
	env.Spawn("outer", func(e transport.Env) {
		if err := outer.Serve(e, 0, func(a string) { outerReady <- a }); err != nil {
			log.Fatalf("outer: %v", err)
		}
	})
	cfg := proxy.Config{OuterServer: <-outerReady, InnerServer: innerAddr}
	fmt.Printf("outer server:           %s\n\n", cfg.OuterServer)

	activeOpen(env, cfg)
	passiveOpen(env, cfg)

	st := outer.Stats()
	fmt.Printf("\nouter server relayed %d active opens, %d passive splices, %d bytes\n",
		st.ConnectRelays, st.BindRelays, st.Bytes)
}

// activeOpen demonstrates NXProxyConnect (paper Figure 3).
func activeOpen(env transport.Env, cfg proxy.Config) {
	// A public echo server ("PB", outside the firewall).
	echo, err := env.Listen(0)
	if err != nil {
		log.Fatal(err)
	}
	env.Spawn("echo", func(e transport.Env) {
		for {
			c, err := echo.Accept(e)
			if err != nil {
				return
			}
			conn := c
			e.Spawn("echo-conn", func(e2 transport.Env) {
				buf := make([]byte, 256)
				for {
					n, err := conn.Read(e2, buf)
					if err != nil {
						return
					}
					if _, err := conn.Write(e2, buf[:n]); err != nil {
						return
					}
				}
			})
		}
	})

	// "PA" inside the firewall calls NXProxyConnect instead of connect().
	c, err := proxy.NXProxyConnect(env, cfg, echo.Addr())
	if err != nil {
		log.Fatalf("NXProxyConnect: %v", err)
	}
	defer c.Close(env)
	msg := "hello through the relay"
	if _, err := c.Write(env, []byte(msg)); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(transport.Stream{Env: env, Conn: c}, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("active open  (Figure 3): PA -> outer -> PB echoed %q\n", buf)
}

// passiveOpen demonstrates NXProxyBind/NXProxyAccept (paper Figure 4).
func passiveOpen(env transport.Env, cfg proxy.Config) {
	pl, err := proxy.NXProxyBind(env, cfg)
	if err != nil {
		log.Fatalf("NXProxyBind: %v", err)
	}
	defer pl.Close(env)
	fmt.Printf("passive open (Figure 4): PA advertises %s (bind %s)\n", pl.Addr(), pl.BindID())

	done := make(chan string, 1)
	env.Spawn("pa", func(e transport.Env) {
		c, err := proxy.NXProxyAccept(e, pl)
		if err != nil {
			log.Fatalf("NXProxyAccept: %v", err)
		}
		buf := make([]byte, 256)
		n, err := c.Read(e, buf)
		if err != nil {
			log.Fatal(err)
		}
		_, _ = c.Write(e, []byte("ack:"+string(buf[:n])))
		done <- string(buf[:n])
	})

	// "PB" dials the advertised outer address like any socket.
	c, err := env.Dial(pl.Addr())
	if err != nil {
		log.Fatalf("dial advertised address: %v", err)
	}
	defer c.Close(env)
	if _, err := c.Write(env, []byte("knock knock")); err != nil {
		log.Fatal(err)
	}
	reply := make([]byte, 15)
	if _, err := io.ReadFull(transport.Stream{Env: env, Conn: c}, reply); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("passive open (Figure 4): PB -> outer -> inner -> PA got %q, reply %q\n", <-done, reply)
}
