// Job submission beyond the firewall: the paper's Figure 2 flow, end to end
// on the simulated testbed.
//
// A client at ETL submits an RSL job to the gatekeeper on rwcp-outer
// (outside the RWCP firewall). The gatekeeper authenticates the client,
// forks an RMF-type job manager, whose Q client asks the resource allocator
// (inside the firewall) for resources and submits the processes to Q
// servers on the COMPaS nodes. Input/output files are staged through GASS.
//
// Run with: go run ./examples/jobsubmit
package main

import (
	"fmt"
	"log"
	"time"

	"nxcluster/internal/auth"
	"nxcluster/internal/cluster"
	"nxcluster/internal/gass"
	"nxcluster/internal/gram"
	"nxcluster/internal/rmf"
	"nxcluster/internal/transport"
)

func main() {
	tb := cluster.NewTestbed(cluster.Options{})
	defer tb.K.Shutdown()

	// The paper: "the firewall must be configured to allow communications
	// between the Q client and the resource allocator, and the Q client and
	// the Q server."
	tb.Firewall.AllowIncomingPort(rmf.AllocatorPort, "RMF: Q client -> allocator")
	tb.Firewall.AllowIncomingPort(rmf.QServerPort, "RMF: Q client -> Q servers")

	// Programs available on the COMPaS nodes.
	reg := rmf.NewRegistry()
	reg.Register("wordcount", func(e transport.Env, ctx *rmf.JobContext) error {
		words := 0
		inWord := false
		for _, b := range ctx.Stdin {
			sp := b == ' ' || b == '\n' || b == '\t'
			if !sp && !inWord {
				words++
			}
			inWord = !sp
		}
		fmt.Fprintf(&ctx.Stdout, "%s counted %d words\n", ctx.Resource, words)
		return nil
	})

	// RMF daemons inside the firewall.
	alloc := rmf.NewAllocator()
	tb.Host(cluster.RWCPInner).SpawnDaemonOn("allocator", func(e transport.Env) {
		_ = alloc.Serve(e, rmf.AllocatorPort, nil)
	})
	for i := 0; i < cluster.CompasNodes; i++ {
		host := cluster.CompasNode(i)
		q := rmf.NewQServer(host, "compas", 4, reg)
		tb.Host(host).SpawnDaemonOn("qserver-"+host, func(e transport.Env) {
			e.Sleep(time.Millisecond)
			_ = q.Serve(e, rmf.QServerPort, transport.JoinAddr(cluster.RWCPInner, rmf.AllocatorPort), nil)
		})
	}

	// GASS server at ETL holding the input file and receiving outputs.
	store := gass.NewStore()
	store.Put("/input.txt", []byte("the quick brown fox jumps over the lazy dog"))
	gsrv := gass.NewServer(store)
	tb.Host(cluster.ETLSun).SpawnDaemonOn("gass", func(e transport.Env) {
		_ = gsrv.Serve(e, 7200, nil)
	})
	gassHost := transport.JoinAddr(cluster.ETLSun, 7200)

	// Gatekeeper outside the firewall.
	cred, err := auth.NewCredential("/O=Grid/OU=ETL/CN=researcher")
	if err != nil {
		log.Fatal(err)
	}
	kr := auth.NewKeyring()
	kr.Grant(cred, "researcher")
	gk := gram.NewGatekeeper(gram.Config{
		Keyring:       kr,
		Registry:      reg,
		AllocatorAddr: transport.JoinAddr(cluster.RWCPInner, rmf.AllocatorPort),
	})
	gk.SetTrace(func(format string, args ...interface{}) {
		fmt.Printf("  [gatekeeper] "+format+"\n", args...)
	})
	tb.Host(cluster.RWCPOuter).SpawnDaemonOn("gatekeeper", func(e transport.Env) {
		_ = gk.Serve(e, gram.DefaultPort, nil)
	})

	// The client at ETL submits the job.
	rslReq := fmt.Sprintf(
		`&(executable=wordcount)(count=3)(jobmanager=rmf)(cluster=compas)(stdin=%s)(stdout=%s)`,
		gass.URL(gassHost, "/input.txt"), gass.URL(gassHost, "/out/wc"))
	fmt.Printf("submitting RSL:\n  %s\n\n", rslReq)

	tb.Host(cluster.ETLSun).SpawnOn("client", func(e transport.Env) {
		e.Sleep(5 * time.Millisecond)
		gkAddr := transport.JoinAddr(cluster.RWCPOuter, gram.DefaultPort)
		contact, err := gram.Submit(e, gkAddr, cred, rslReq)
		if err != nil {
			log.Fatalf("submit: %v", err)
		}
		fmt.Printf("  [client] job contact: %s\n", contact)
		if err := gram.Wait(e, gkAddr, cred, contact, 10*time.Millisecond, time.Minute); err != nil {
			log.Fatalf("wait: %v", err)
		}
		fmt.Printf("  [client] job done at virtual t=%.3fs\n", e.Now().Seconds())
	})

	if err := tb.K.Run(); err != nil {
		log.Fatalf("simulation: %v", err)
	}

	fmt.Println("\nstaged outputs:")
	for _, p := range store.List("/out") {
		data, _ := store.Get(p)
		fmt.Printf("  %s: %s", p, data)
	}
}
