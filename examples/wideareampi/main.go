// Wide-area MPI: run an MPI program across the simulated Figure 5 testbed,
// with RWCP-site ranks communicating through the Nexus Proxy and ETL ranks
// directly — the MPICH-G configuration of the paper's Table 3.
//
// The program computes a distributed dot product with Allreduce, then
// reports each rank's placement and the proxy relay counters, demonstrating
// that collectives crossing the firewall really flow through the relay.
//
// Run with: go run ./examples/wideareampi
package main

import (
	"fmt"
	"log"

	"nxcluster/internal/cluster"
	"nxcluster/internal/knapsack"
	"nxcluster/internal/mpi"
	"nxcluster/internal/nexus"
)

func main() {
	tb := cluster.NewTestbed(cluster.Options{})
	defer tb.K.Shutdown()

	placements := tb.Placements(cluster.SystemWide, true)
	w := mpi.NewWorld(placements)
	fmt.Printf("launching %d ranks on the wide-area cluster (proxy enabled for RWCP site)\n\n", w.Size())

	w.Launch(func(c *mpi.Comm) error {
		// Each rank contributes rank+1 squared; the exact global sum is
		// n(n+1)(2n+1)/6 for n = size.
		v := int64(c.Rank()+1) * int64(c.Rank()+1)
		sum, err := c.AllreduceInt64(v, mpi.OpSum)
		if err != nil {
			return err
		}
		n := int64(c.Size())
		if want := n * (n + 1) * (2*n + 1) / 6; sum != want {
			return fmt.Errorf("rank %d: allreduce = %d, want %d", c.Rank(), sum, want)
		}

		// A short knapsack burst per rank exercises Compute on each host's
		// virtual CPUs (heterogeneous speeds).
		best, _ := knapsack.SolveExhaustive(knapsack.Normalized(20, 3))
		b := nexus.NewBuffer()
		b.PutString(fmt.Sprintf("rank %2d on %-10s allreduce=%d local-knapsack-best=%d", c.Rank(), c.Name(c.Rank()), sum, best))
		parts, err := c.Gather(0, b.Bytes())
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for _, p := range parts {
				line, _ := nexus.FromBytes(p).GetString()
				fmt.Println(line)
			}
		}
		return c.Barrier()
	})

	if err := tb.K.Run(); err != nil {
		log.Fatalf("simulation: %v", err)
	}
	if err := w.Err(); err != nil {
		log.Fatalf("mpi: %v", err)
	}

	fmt.Printf("\nvirtual time elapsed: %.3f s\n", tb.K.Now().Seconds())
	fmt.Printf("outer server: %d active relays, %d passive splices, %d bytes relayed\n",
		tb.Outer.Stats().ConnectRelays, tb.Outer.Stats().BindRelays, tb.Outer.Stats().Bytes)
	fmt.Printf("firewall: %d connections allowed, %d denied\n",
		tb.Firewall.AllowedCount(), tb.Firewall.DeniedCount())
}
