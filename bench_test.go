// Package repro's top-level benchmarks regenerate every table and figure of
// the paper's evaluation. Each benchmark runs the corresponding experiment
// end to end on the simulated testbed and reports the paper's headline
// metrics as custom benchmark units, so `go test -bench=.` reproduces the
// whole evaluation:
//
//	BenchmarkTable2Latency*    — one-way latency, direct vs via proxy
//	BenchmarkTable2Bandwidth*  — 4 KiB / 1 MiB message bandwidth
//	BenchmarkTable4*           — knapsack execution time and speedup per system
//	BenchmarkTable5Steals      — steal-request statistics
//	BenchmarkTable6Traversed   — traversed-node statistics
//	BenchmarkFigure*           — topology/flow experiments
//	BenchmarkAblation*         — design-choice sweeps from DESIGN.md
//	BenchmarkTransfer*         — congestion-modeled gridftp bulk transfers
package repro

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"nxcluster/internal/bench"
	"nxcluster/internal/cluster"
	"nxcluster/internal/fleet"
	"nxcluster/internal/knapsack"
	"nxcluster/internal/mpi"
	"nxcluster/internal/obs"
	"nxcluster/internal/proxy"
	"nxcluster/internal/sim"
	"nxcluster/internal/simnet"
	"nxcluster/internal/transport"
)

// table2Rows runs the Table 2 measurement once per benchmark iteration and
// returns the last result.
func table2Rows(b *testing.B) []bench.Table2Row {
	b.Helper()
	var rows []bench.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunTable2(bench.Table2Config{Rounds: 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	return rows
}

func BenchmarkTable2LatencyAndBandwidth(b *testing.B) {
	rows := table2Rows(b)
	for _, r := range rows {
		prefix := strings.ReplaceAll(r.Path, " <-> ", "~") + "/" + r.Mode()
		b.ReportMetric(float64(r.Latency)/float64(time.Millisecond), "ms-latency:"+prefix)
	}
	b.ReportMetric(rows[0].Bandwidth[1<<20]/(1<<20), "MBps-1MB-direct-LAN")
	b.ReportMetric(rows[1].Bandwidth[1<<20]/(1<<10), "KBps-1MB-proxy-LAN")
	b.ReportMetric(rows[2].Bandwidth[1<<20]/(1<<10), "KBps-1MB-direct-WAN")
	b.ReportMetric(rows[3].Bandwidth[1<<20]/(1<<10), "KBps-1MB-proxy-WAN")
}

// knapsackReport runs the Tables 4-6 sweep once per iteration (capacity 3
// keeps a full iteration under ~150 ms of host time).
func knapsackReport(b *testing.B) *bench.KnapsackReport {
	b.Helper()
	var r *bench.KnapsackReport
	for i := 0; i < b.N; i++ {
		var err error
		r, err = bench.RunKnapsack(bench.KnapsackConfig{Capacity: 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	return r
}

func BenchmarkTable4ExecutionAndSpeedup(b *testing.B) {
	b.ReportAllocs()
	r := knapsackReport(b)
	b.ReportMetric(r.SeqTime.Seconds(), "vsec-sequential")
	for _, row := range r.Rows {
		b.ReportMetric(row.Speedup, "speedup:"+strings.ReplaceAll(row.System, " ", "-"))
	}
	b.ReportMetric(r.ProxyOverhead()*100, "pct-proxy-overhead")
}

func BenchmarkTable5Steals(b *testing.B) {
	r := knapsackReport(b)
	b.ReportMetric(float64(r.Local.MasterHandled), "steals-local-master")
	b.ReportMetric(float64(r.Wide.MasterHandled), "steals-wide-master")
}

func BenchmarkTable6Traversed(b *testing.B) {
	r := knapsackReport(b)
	b.ReportMetric(float64(r.Wide.Stats[0].Traversed), "nodes-wide-master")
	b.ReportMetric(float64(r.Wide.TotalTraversed), "nodes-total")
}

func BenchmarkFigure2SubmissionFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3ActiveOpen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4PassiveOpen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRelayBuffer sweeps the relay buffer size — the knob
// behind the paper's small-message bandwidth cliff (DESIGN.md ablation 1).
func BenchmarkAblationRelayBuffer(b *testing.B) {
	for _, bufBytes := range []int{1024, 4096, 16384} {
		bufBytes := bufBytes
		b.Run(byteSize(bufBytes), func(b *testing.B) {
			var rows []bench.Table2Row
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = bench.RunTable2(bench.Table2Config{
					Rounds:  2,
					Options: cluster.Options{RelayBufBytes: bufBytes},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rows[1].Bandwidth[1<<20]/(1<<10), "KBps-1MB-proxy-LAN")
		})
	}
}

// BenchmarkAblationStealUnit sweeps the self-scheduler's stealunit
// (DESIGN.md ablation 2; the paper "varied stealunit, interval, and
// backunit and took the best combination").
func BenchmarkAblationStealUnit(b *testing.B) {
	for _, su := range []int{1, 2, 4} {
		su := su
		b.Run(intName("stealunit", su), func(b *testing.B) {
			var r *bench.KnapsackReport
			for i := 0; i < b.N; i++ {
				p := knapsack.DefaultParams()
				p.StealUnit = su
				var err error
				r, err = bench.RunKnapsack(bench.KnapsackConfig{Capacity: 3, Params: p})
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, row := range r.Rows {
				if row.System == "Wide-area Cluster (use Nexus Proxy)" {
					b.ReportMetric(row.Speedup, "speedup-wide")
				}
			}
		})
	}
}

// BenchmarkAblationProxyPlacement compares both-endpoints-proxied (COMPaS
// style) against one-side-proxied (ETL style) round trips (DESIGN.md
// ablation 3); the measurement is built into Table 2's two indirect rows.
func BenchmarkAblationProxyPlacement(b *testing.B) {
	rows := table2Rows(b)
	b.ReportMetric(float64(rows[1].Latency)/float64(time.Millisecond), "ms-both-sides-proxied")
	b.ReportMetric(float64(rows[3].Latency)/float64(time.Millisecond), "ms-one-side-proxied")
}

// BenchmarkObsSpan measures the observability layer's span hot path. The
// disabled leaf is the price every instrumented site pays when tracing is
// off — a nil receiver check, zero allocations (pinned by the regression
// test in internal/obs) — and the enabled/traced leaves are the marginal
// cost of flat spans and causal parent/child spans when a trace is on.
func BenchmarkObsSpan(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		var o *obs.Observer
		for i := 0; i < b.N; i++ {
			at := time.Duration(i)
			id := o.Begin(at, "rmf", "job", "bench")
			o.End(at+1, id, "rmf", "job", "bench")
		}
	})
	// The enabled/traced leaves reset the observer every 64k spans, outside
	// the timer: otherwise the event buffer grows with b.N and the measured
	// cost is dominated by slice-doubling copies and GC scans of an
	// ever-larger live buffer — a number that depends on -benchtime, not on
	// the span hot path.
	const resetMask = 1<<16 - 1
	b.Run("enabled", func(b *testing.B) {
		b.ReportAllocs()
		o := obs.New()
		for i := 0; i < b.N; i++ {
			if i&resetMask == resetMask {
				b.StopTimer()
				o = obs.New()
				b.StartTimer()
			}
			at := time.Duration(i)
			id := o.Begin(at, "rmf", "job", "bench")
			o.End(at+1, id, "rmf", "job", "bench")
		}
	})
	b.Run("traced", func(b *testing.B) {
		b.ReportAllocs()
		o := obs.New()
		root := o.BeginTrace(0, "rmf", "job", "bench")
		for i := 0; i < b.N; i++ {
			if i&resetMask == resetMask {
				b.StopTimer()
				o = obs.New()
				root = o.BeginTrace(0, "rmf", "job", "bench")
				b.StartTimer()
			}
			at := time.Duration(i)
			child := o.BeginChild(at, root, "gram", "submit", "bench")
			o.EndSpan(at+1, child, "gram", "submit", "bench")
		}
	})
}

// BenchmarkSimnetThroughput measures raw simulator performance: virtual
// bytes streamed per host-second, the substrate cost every experiment pays.
func BenchmarkSimnetThroughput(b *testing.B) {
	const size = 1 << 20
	b.ReportAllocs()
	b.SetBytes(size)
	for i := 0; i < b.N; i++ {
		k := sim.New()
		n := simnet.New(k)
		n.AddHost("a", simnet.HostConfig{})
		n.AddHost("b", simnet.HostConfig{})
		n.Connect("a", "b", simnet.LinkConfig{Latency: time.Millisecond, Bandwidth: 100 << 20})
		n.Node("b").SpawnDaemonOn("sink", func(env transport.Env) {
			l, _ := env.Listen(1)
			c, err := l.Accept(env)
			if err != nil {
				return
			}
			buf := make([]byte, 64*1024)
			total := 0
			for total < size {
				nn, err := c.Read(env, buf)
				if err != nil {
					return
				}
				total += nn
			}
			_, _ = c.Write(env, []byte{1})
		})
		n.Node("a").SpawnOn("src", func(env transport.Env) {
			env.Sleep(time.Millisecond)
			c, err := env.Dial("b:1")
			if err != nil {
				b.Error(err)
				return
			}
			_, _ = c.Write(env, make([]byte, size))
			one := make([]byte, 1)
			_, _ = c.Read(env, one)
		})
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		k.Shutdown()
	}
}

// BenchmarkKernelStep measures the kernel's per-step cost on the hot
// Sleep/wake path: each iteration is one Step (a ready-task run or an event
// fire). Steady state is allocation-free — events come from the kernel's
// free list and wakeups reference the process directly, with no callback
// closure.
func BenchmarkKernelStep(b *testing.B) {
	b.ReportAllocs()
	k := sim.New()
	k.SpawnDaemon("ticker", func(p *sim.Proc) {
		for {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkKernelTimerStop measures arming and immediately canceling a
// timer. The index-aware event heap removes the canceled event in O(log n)
// instead of leaking it until its deadline, so churned timeouts cost only
// the Timer handle.
func BenchmarkKernelTimerStop(b *testing.B) {
	b.ReportAllocs()
	k := sim.New()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(time.Second, fn).Stop()
	}
}

// BenchmarkMPIPingPong measures the simulated MPI stack's host-side cost.
func BenchmarkMPIPingPong(b *testing.B) {
	b.ReportAllocs()
	k := sim.New()
	n := simnet.New(k)
	n.AddHost("a", simnet.HostConfig{})
	n.AddHost("b", simnet.HostConfig{})
	n.Connect("a", "b", simnet.LinkConfig{Latency: 100 * time.Microsecond, Bandwidth: 100 << 20})
	w := mpi.NewWorld([]mpi.Placement{
		{Name: "a", Spawn: n.Node("a").SpawnOn},
		{Name: "b", Spawn: n.Node("b").SpawnOn},
	})
	iters := b.N
	w.Launch(func(c *mpi.Comm) error {
		payload := make([]byte, 64)
		for i := 0; i < iters; i++ {
			if c.Rank() == 0 {
				if err := c.Send(1, 1, payload); err != nil {
					return err
				}
				if _, err := c.Recv(1, 2); err != nil {
					return err
				}
			} else {
				if _, err := c.Recv(0, 1); err != nil {
					return err
				}
				if err := c.Send(0, 2, payload); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	k.Shutdown()
	if err := w.Err(); err != nil {
		b.Fatal(err)
	}
}

// transferPointBench runs one congestion-modeled gridftp sweep point per
// iteration (1 MiB at 2% segment loss through the firewall proxy) and
// reports the resulting goodput alongside the host-side cost of simulating
// it.
func transferPointBench(b *testing.B, streams int) {
	b.Helper()
	b.ReportAllocs()
	b.SetBytes(1 << 20)
	cfg := bench.TransferConfig{
		FileSize:  1 << 20,
		Streams:   []int{streams},
		LossRates: []float64{0.02},
	}
	var pts []bench.TransferPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.RunTransfer(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].Goodput/(1<<10), "KBps-goodput")
}

// BenchmarkTransferSingle is the lossy bulk transfer on one data channel —
// a single Reno flow paying the full congestion-recovery cost.
func BenchmarkTransferSingle(b *testing.B) { transferPointBench(b, 1) }

// BenchmarkTransferParallel8 is the same transfer over eight parallel data
// channels, GridFTP's loss-tolerance lever.
func BenchmarkTransferParallel8(b *testing.B) { transferPointBench(b, 8) }

// BenchmarkProxyRelayTCP measures the real-TCP relay's throughput on
// loopback (the engineering artifact itself, not the simulation).
func BenchmarkProxyRelayTCP(b *testing.B) {
	env := transport.NewTCPEnv("localhost")
	inner := proxy.NewInnerServer(proxy.RelayConfig{})
	innerReady := make(chan string, 1)
	env.Spawn("inner", func(e transport.Env) {
		_ = inner.Serve(e, 0, func(a string) { innerReady <- a })
	})
	outer := proxy.NewOuterServer(<-innerReady, proxy.RelayConfig{})
	outerReady := make(chan string, 1)
	env.Spawn("outer", func(e transport.Env) {
		_ = outer.Serve(e, 0, func(a string) { outerReady <- a })
	})
	cfg := proxy.Config{OuterServer: <-outerReady, InnerServer: inner.Addr()}
	defer outer.Close(env)
	defer inner.Close(env)

	sink, err := env.Listen(0)
	if err != nil {
		b.Fatal(err)
	}
	defer sink.Close(env)
	const chunk = 1 << 20
	env.Spawn("sink", func(e transport.Env) {
		for {
			c, err := sink.Accept(e)
			if err != nil {
				return
			}
			conn := c
			e.Spawn("drain", func(e2 transport.Env) {
				buf := make([]byte, 64*1024)
				total := 0
				for {
					n, err := conn.Read(e2, buf)
					total += n
					if total >= chunk {
						_, _ = conn.Write(e2, []byte{1})
						total = 0
					}
					if err != nil {
						return
					}
				}
			})
		}
	})

	c, err := proxy.NXProxyConnect(env, cfg, sink.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close(env)
	b.SetBytes(chunk)
	b.ResetTimer()
	data := make([]byte, chunk)
	ack := make([]byte, 1)
	for i := 0; i < b.N; i++ {
		if _, err := c.Write(env, data); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Read(env, ack); err != nil {
			b.Fatal(err)
		}
	}
}

func byteSize(n int) string {
	switch {
	case n >= 1<<20:
		return intName("buf", n>>20) + "MiB"
	case n >= 1<<10:
		return intName("buf", n>>10) + "KiB"
	default:
		return intName("buf", n) + "B"
	}
}

func intName(prefix string, n int) string {
	digits := "0123456789"
	if n == 0 {
		return prefix + "0"
	}
	var out []byte
	for n > 0 {
		out = append([]byte{digits[n%10]}, out...)
		n /= 10
	}
	return prefix + string(out)
}

// parallelGridConfig is the parallel-DES benchmark workload: the Table 4
// wide-area knapsack widened across three extra grid sites (five site
// partitions) on a 20 ms WAN, with the firewall opened for direct
// cross-site communication.
func parallelGridConfig() bench.GridConfig {
	return bench.GridConfig{
		Capacity: 4,
		Options: cluster.Options{
			ExtraSites:   3,
			OpenFirewall: true,
			WANLatency:   20 * time.Millisecond,
		},
	}
}

// BenchmarkParallelTable4 measures the conservative parallel-DES mode on the
// wide-grid Table 4 workload: the same simulation run on the monolithic
// sequential kernel and partitioned across site sub-kernels at 1, 2, 4 and
// GOMAXPROCS site-workers. Virtual results are bit-identical across all
// sub-benchmarks (the invariance tests pin this); only wall-clock differs,
// so ns/op ratios between the "sequential" leaf and the "site-workers=N"
// leaves are the simulator's parallel speedup.
func BenchmarkParallelTable4(b *testing.B) {
	run := func(sites int) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			var r *bench.GridResult
			for i := 0; i < b.N; i++ {
				var err error
				r, err = bench.RunGridKnapsack(parallelGridConfig(), sites)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.Elapsed.Seconds(), "vsec-exec")
		}
	}
	b.Run("sequential", run(0))
	seen := map[int]bool{}
	for _, sites := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		if seen[sites] {
			continue
		}
		seen[sites] = true
		// '=' instead of '-' so benchjson's -GOMAXPROCS suffix stripping
		// cannot eat the worker count.
		b.Run(intName("site-workers=", sites), run(sites))
	}
}

// BenchmarkFleetSweep measures fleet-scale simulator throughput: each leaf
// runs one complete open-loop fleet workload (sites x hosts topology, Poisson
// arrivals with bounded-Pareto sizes, sharded allocation, batched control
// plane) and reports simulated events per wall second — the figure of merit
// that says whether the 10k-host / 1M-job scenario fits in minutes. The '='
// leaf names keep benchjson's -GOMAXPROCS suffix stripping away from the
// shape parameters.
func BenchmarkFleetSweep(b *testing.B) {
	shapes := []struct {
		name  string
		sites int
		hosts int
		jobs  int
	}{
		{"sites=16/hosts=32/jobs=50k", 16, 32, 50_000},
		{"sites=64/hosts=64/jobs=200k", 64, 64, 200_000},
	}
	for _, sh := range shapes {
		sh := sh
		b.Run(sh.name, func(b *testing.B) {
			b.ReportAllocs()
			// Rate sized to ~0.85 utilization: capacity = sites*hosts*2 slots
			// over a 10s mean job.
			rate := 0.85 * float64(sh.sites*sh.hosts*2) / 10.0
			var r *bench.FleetReport
			for i := 0; i < b.N; i++ {
				var err error
				r, err = bench.RunFleet(fleet.Config{
					Sites:        sh.sites,
					HostsPerSite: sh.hosts,
					Jobs:         sh.jobs,
					Seed:         1,
					Arrivals:     fleet.RateShape{Kind: fleet.RateConstant, Rate: rate},
					Sizes: fleet.SizeDist{Kind: fleet.DistPareto,
						Alpha: 1.5, Min: time.Second, Max: 5 * time.Minute},
					Heartbeat: 30 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.EventsPerSec/1e6, "Mevents/sec")
			b.ReportMetric(r.JobsPerSec/1e3, "kjobs/sec")
			b.ReportMetric(r.Result.Makespan.Seconds(), "vsec-makespan")
		})
	}
}

// BenchmarkAblationHierarchy compares the paper's flat master/worker scheme
// with the two-level hierarchical extension on the wide-area testbed
// (per-cluster sub-masters keep steal traffic off the WAN).
func BenchmarkAblationHierarchy(b *testing.B) {
	var flat, hier time.Duration
	var flatWAN, hierWAN int64
	wanMsgs := func(stats []knapsack.RankStats, subMasterOnly bool) int64 {
		// Count messages the ETL ranks exchange across the WAN: in the flat
		// scheme every ETL rank talks to the RWCP-side master; in the
		// hierarchy only the ETL sub-master (its lowest rank) does.
		var n int64
		first := true
		for _, st := range stats {
			if st.Name != "etl-o2k" {
				continue
			}
			if subMasterOnly && !first {
				continue
			}
			first = false
			n += st.Steals + st.SentBack
		}
		return n
	}
	for i := 0; i < b.N; i++ {
		r, err := bench.RunKnapsack(bench.KnapsackConfig{Capacity: 3})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.System == "Wide-area Cluster (use Nexus Proxy)" {
				flat = row.Exec
				flatWAN = wanMsgs(row.Result.Stats, false)
			}
		}
		hres, err := bench.RunWideHierarchical(bench.KnapsackConfig{Capacity: 3})
		if err != nil {
			b.Fatal(err)
		}
		hier = hres.Elapsed
		hierWAN = wanMsgs(hres.Stats, true)
	}
	b.ReportMetric(flat.Seconds(), "vsec-flat-wide")
	b.ReportMetric(hier.Seconds(), "vsec-hierarchical-wide")
	b.ReportMetric(float64(flatWAN), "wanmsgs-flat")
	b.ReportMetric(float64(hierWAN), "wanmsgs-hierarchical")
}
